// Precomputed per-row runs of nodes satisfying a predicate (e.g. "computed
// by the solver", "wall", "filter applies here").  The geometry is static,
// so the hot loops can iterate contiguous [x0, x1) spans instead of testing
// node(x, y) at every cell — on geometries with many solid rows (the
// flue pipe) whole rows vanish from the iteration, and on open regions the
// per-cell branch disappears from the inner loop.
//
// Spans are built once at domain construction over a rectangular window
// (typically the padded local window) and clipped to arbitrary sub-boxes at
// iteration time, which is what lets the boundary-band and interior passes
// of the overlapped schedule share one span table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/grid/extents.hpp"
#include "src/util/check.hpp"

namespace subsonic {

/// One contiguous run [x0, x1) of matching nodes within a row.
struct MaskSpan {
  int x0 = 0;
  int x1 = 0;
  friend constexpr bool operator==(MaskSpan, MaskSpan) = default;
};

/// Per-row span table over a 2D window [x_lo, x_hi) x [y_lo, y_hi).
class MaskSpans2D {
 public:
  MaskSpans2D() = default;

  /// Builds the table from `pred(x, y)` over the window.
  template <typename Pred>
  MaskSpans2D(int x_lo, int x_hi, int y_lo, int y_hi, Pred&& pred)
      : y_lo_(y_lo), y_hi_(y_hi) {
    SUBSONIC_REQUIRE(x_hi >= x_lo && y_hi >= y_lo);
    row_begin_.reserve(static_cast<size_t>(y_hi - y_lo) + 1);
    for (int y = y_lo; y < y_hi; ++y) {
      row_begin_.push_back(static_cast<std::uint32_t>(spans_.size()));
      int run_start = x_lo;
      bool in_run = false;
      for (int x = x_lo; x < x_hi; ++x) {
        const bool hit = pred(x, y);
        if (hit && !in_run) {
          run_start = x;
          in_run = true;
        } else if (!hit && in_run) {
          spans_.push_back(MaskSpan{run_start, x});
          in_run = false;
        }
      }
      if (in_run) spans_.push_back(MaskSpan{run_start, x_hi});
    }
    row_begin_.push_back(static_cast<std::uint32_t>(spans_.size()));
  }

  int y_lo() const { return y_lo_; }
  int y_hi() const { return y_hi_; }

  /// The spans of row `y`; empty outside the built window.
  std::span<const MaskSpan> row(int y) const {
    if (y < y_lo_ || y >= y_hi_) return {};
    const size_t i = static_cast<size_t>(y - y_lo_);
    return {spans_.data() + row_begin_[i],
            spans_.data() + row_begin_[i + 1]};
  }

  /// Calls `fn(a, b)` for every span of row `y` clipped to [cx0, cx1).
  template <typename Fn>
  void for_row(int y, int cx0, int cx1, Fn&& fn) const {
    for (const MaskSpan& s : row(y)) {
      const int a = std::max(s.x0, cx0);
      const int b = std::min(s.x1, cx1);
      if (a < b) fn(a, b);
    }
  }

  /// Total matching nodes over the whole window.
  std::int64_t total() const {
    std::int64_t n = 0;
    for (const MaskSpan& s : spans_) n += s.x1 - s.x0;
    return n;
  }

 private:
  int y_lo_ = 0, y_hi_ = 0;
  std::vector<std::uint32_t> row_begin_;  // spans_ index of each row, +end
  std::vector<MaskSpan> spans_;
};

/// Per-row span table over a 3D window; rows are (y, z) pencils along x.
class MaskSpans3D {
 public:
  MaskSpans3D() = default;

  template <typename Pred>
  MaskSpans3D(int x_lo, int x_hi, int y_lo, int y_hi, int z_lo, int z_hi,
              Pred&& pred)
      : y_lo_(y_lo), y_hi_(y_hi), z_lo_(z_lo), z_hi_(z_hi) {
    SUBSONIC_REQUIRE(x_hi >= x_lo && y_hi >= y_lo && z_hi >= z_lo);
    const size_t rows =
        static_cast<size_t>(y_hi - y_lo) * static_cast<size_t>(z_hi - z_lo);
    row_begin_.reserve(rows + 1);
    for (int z = z_lo; z < z_hi; ++z) {
      for (int y = y_lo; y < y_hi; ++y) {
        row_begin_.push_back(static_cast<std::uint32_t>(spans_.size()));
        int run_start = x_lo;
        bool in_run = false;
        for (int x = x_lo; x < x_hi; ++x) {
          const bool hit = pred(x, y, z);
          if (hit && !in_run) {
            run_start = x;
            in_run = true;
          } else if (!hit && in_run) {
            spans_.push_back(MaskSpan{run_start, x});
            in_run = false;
          }
        }
        if (in_run) spans_.push_back(MaskSpan{run_start, x_hi});
      }
    }
    row_begin_.push_back(static_cast<std::uint32_t>(spans_.size()));
  }

  std::span<const MaskSpan> row(int y, int z) const {
    if (y < y_lo_ || y >= y_hi_ || z < z_lo_ || z >= z_hi_) return {};
    const size_t i = static_cast<size_t>(z - z_lo_) *
                         static_cast<size_t>(y_hi_ - y_lo_) +
                     static_cast<size_t>(y - y_lo_);
    return {spans_.data() + row_begin_[i],
            spans_.data() + row_begin_[i + 1]};
  }

  template <typename Fn>
  void for_row(int y, int z, int cx0, int cx1, Fn&& fn) const {
    for (const MaskSpan& s : row(y, z)) {
      const int a = std::max(s.x0, cx0);
      const int b = std::min(s.x1, cx1);
      if (a < b) fn(a, b);
    }
  }

  std::int64_t total() const {
    std::int64_t n = 0;
    for (const MaskSpan& s : spans_) n += s.x1 - s.x0;
    return n;
  }

 private:
  int y_lo_ = 0, y_hi_ = 0, z_lo_ = 0, z_hi_ = 0;
  std::vector<std::uint32_t> row_begin_;
  std::vector<MaskSpan> spans_;
};

}  // namespace subsonic
