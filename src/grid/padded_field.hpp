// Ghost-padded scalar fields.  Each subregion in the decomposition stores
// its interior nodes plus `ghost` layers of padding on every side (the
// paper's "padding" / ghost-cell technique, section 4.2): once neighbour
// boundary data has been copied into the padding, the stencil update of the
// interior needs no knowledge of communication at all.
//
// The row pitch can be padded beyond the logical width.  This exists for
// two reasons: (1) it reproduces Appendix E of the paper — on the HP9000/700
// a row length near a multiple of the 4096-byte page caused pathological
// cache behaviour, fixed by lengthening arrays by 200-300 bytes — and our
// bench_padding_4096 measures the modern analogue (set-associativity
// conflicts); (2) it allows alignment experiments without touching callers.
//
// Storage is 64-byte aligned and the pitch is a whole number of cache
// lines, so every row starts on a cache-line boundary and the vectorized
// kernels never straddle lines at row starts.  The base width (logical
// width + ghosts) and extra_pitch are each rounded up to whole lines
// separately: the Appendix-E experiments ask for N extra elements and get
// at least N, never fewer because the quantization of the base absorbed
// them.
//
// A field is either *owning* (its own contiguous allocation, row stride ==
// pitch) or a *view* into external storage with an arbitrary row stride.
// Views exist for the SoA population slab: the LB directions live
// row-interleaved in one allocation (row y of direction i at slab +
// (y * Q + i) * pitch), so the collide-stream sweep reads and writes one
// dense sequential region instead of Q scattered plane-sized streams —
// the hardware prefetchers track a handful of streams well and a
// conflicting score of them poorly.  Everything row-based (row_ptr,
// row_begin, operator(), comparisons, checkpoint serialization) works
// identically on views; only raw() requires an owning field, because a
// view's rows are not contiguous.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "src/grid/aligned_alloc.hpp"
#include "src/grid/extents.hpp"
#include "src/util/check.hpp"

namespace subsonic {

/// 2D scalar field with `ghost` padding layers.  Interior coordinates are
/// [0, nx) x [0, ny); any coordinate in [-g, nx+g) x [-g, ny+g) is valid.
/// Storage is row-major with x fastest.
template <typename T>
class PaddedField2D {
 public:
  PaddedField2D() = default;

  /// `extra_pitch` adds unused elements to each row (Appendix E experiments).
  PaddedField2D(Extents2 interior, int ghost, int extra_pitch = 0)
      : interior_(interior), ghost_(ghost) {
    SUBSONIC_REQUIRE(interior.nx > 0 && interior.ny > 0);
    SUBSONIC_REQUIRE(ghost >= 0 && extra_pitch >= 0);
    // Rounding the sum would let the line quantization swallow the extra
    // entirely (width 10 + extra 5 still rounds to 16); quantizing the
    // extra separately guarantees at least `extra_pitch` elements beyond
    // the base pitch, as Appendix E asks for.
    pitch_ = round_pitch<T>(interior.nx + 2 * ghost) +
             round_pitch<T>(extra_pitch);
    row_stride_ = pitch_;
    rows_ = interior.ny + 2 * ghost;
    data_.assign(static_cast<std::size_t>(pitch_) * rows_, T{});
  }

  /// Non-owning strided view over external storage: row y starts at
  /// `base + (y + ghost) * row_stride` and owns `pitch` elements there.
  /// The caller keeps the storage alive and initialized.
  PaddedField2D(T* base, Extents2 interior, int ghost, int pitch,
                int row_stride)
      : interior_(interior),
        ghost_(ghost),
        pitch_(pitch),
        row_stride_(row_stride),
        rows_(interior.ny + 2 * ghost),
        view_(base) {
    SUBSONIC_REQUIRE(base != nullptr);
    SUBSONIC_REQUIRE(pitch >= interior.nx + 2 * ghost);
    SUBSONIC_REQUIRE(row_stride >= pitch);
  }

  Extents2 interior() const { return interior_; }
  int nx() const { return interior_.nx; }
  int ny() const { return interior_.ny; }
  int ghost() const { return ghost_; }
  int pitch() const { return pitch_; }
  /// Elements between consecutive rows (== pitch for owning fields).
  int row_stride() const { return row_stride_; }
  /// False for views into an interleaved slab (rows not contiguous).
  bool contiguous() const { return view_ == nullptr; }

  /// Number of stored elements including padding (a view counts only its
  /// own rows' exclusive `pitch`-element storage, not the stride gaps).
  std::size_t stored_count() const {
    return static_cast<std::size_t>(pitch_) * rows_;
  }

  bool valid(int x, int y) const {
    return x >= -ghost_ && x < interior_.nx + ghost_ && y >= -ghost_ &&
           y < interior_.ny + ghost_;
  }

  T& operator()(int x, int y) { return base()[index(x, y)]; }
  const T& operator()(int x, int y) const { return base()[index(x, y)]; }

  /// Bounds-checked access, for tests and non-hot paths.
  T& at(int x, int y) {
    SUBSONIC_REQUIRE(valid(x, y));
    return base()[index(x, y)];
  }
  const T& at(int x, int y) const {
    SUBSONIC_REQUIRE(valid(x, y));
    return base()[index(x, y)];
  }

  void fill(T value) {
    if (view_ == nullptr) {
      data_.assign(data_.size(), value);
      return;
    }
    for (int r = 0; r < rows_; ++r)
      std::fill_n(view_ + static_cast<std::size_t>(r) * row_stride_, pitch_,
                  value);
  }

  /// Contiguous storage of an *owning* field; views have none.
  std::span<T> raw() {
    SUBSONIC_REQUIRE(contiguous());
    return data_;
  }
  std::span<const T> raw() const {
    SUBSONIC_REQUIRE(contiguous());
    return data_;
  }

  /// Moves a view's base pointer by `elems` elements.  The in-place
  /// collide-stream sweep re-homes the population views by whole
  /// interleaved-slab row blocks after each step (domain2d.hpp); the
  /// caller guarantees every row the view can address stays inside the
  /// backing storage.  Owning fields cannot be shifted.
  void shift_view(std::ptrdiff_t elems) {
    SUBSONIC_REQUIRE(view_ != nullptr);
    view_ += elems;
  }

  /// Pointer to the start of row y at x = -ghost (useful for row copies).
  T* row_begin(int y) { return base() + index(-ghost_, y); }
  const T* row_begin(int y) const { return base() + index(-ghost_, y); }

  /// Pointer p into row y such that p[x] == (*this)(x, y) for any valid x
  /// (including negative ghost coordinates).  The kernels hoist these per
  /// row so their inner loops run over raw __restrict pointers.
  T* row_ptr(int y) { return base() + index(0, y); }
  const T* row_ptr(int y) const { return base() + index(0, y); }

  friend bool operator==(const PaddedField2D& a, const PaddedField2D& b) {
    if (a.interior_ != b.interior_ || a.ghost_ != b.ghost_) return false;
    for (int y = -a.ghost_; y < a.ny() + a.ghost_; ++y)
      for (int x = -a.ghost_; x < a.nx() + a.ghost_; ++x)
        if (a(x, y) != b(x, y)) return false;
    return true;
  }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y + ghost_) * row_stride_ +
           static_cast<std::size_t>(x + ghost_);
  }

  T* base() { return view_ ? view_ : data_.data(); }
  const T* base() const { return view_ ? view_ : data_.data(); }

  Extents2 interior_{};
  int ghost_ = 0;
  int pitch_ = 0;
  int row_stride_ = 0;
  int rows_ = 0;
  T* view_ = nullptr;  ///< external base when a view; null when owning
  std::vector<T, CacheAlignedAllocator<T>> data_;
};

/// 3D scalar field with ghost padding; x fastest, then y, then z.
template <typename T>
class PaddedField3D {
 public:
  PaddedField3D() = default;

  PaddedField3D(Extents3 interior, int ghost, int extra_pitch = 0)
      : interior_(interior), ghost_(ghost) {
    SUBSONIC_REQUIRE(interior.nx > 0 && interior.ny > 0 && interior.nz > 0);
    SUBSONIC_REQUIRE(ghost >= 0 && extra_pitch >= 0);
    // See PaddedField2D: quantize the extra separately so it is never
    // swallowed by the cache-line rounding of the base width.
    pitch_x_ = round_pitch<T>(interior.nx + 2 * ghost) +
               round_pitch<T>(extra_pitch);
    pencil_stride_ = pitch_x_;
    pitch_y_ = interior.ny + 2 * ghost;
    slabs_ = interior.nz + 2 * ghost;
    data_.assign(
        static_cast<std::size_t>(pitch_x_) * pitch_y_ * slabs_, T{});
  }

  /// Non-owning strided view: pencil (y, z) starts at
  /// `base + ((z + ghost) * pitch_y + (y + ghost)) * pencil_stride` and
  /// owns `pitch_x` elements there.  See the 2D view constructor.
  PaddedField3D(T* base, Extents3 interior, int ghost, int pitch_x,
                int pencil_stride)
      : interior_(interior),
        ghost_(ghost),
        pitch_x_(pitch_x),
        pitch_y_(interior.ny + 2 * ghost),
        pencil_stride_(pencil_stride),
        slabs_(interior.nz + 2 * ghost),
        view_(base) {
    SUBSONIC_REQUIRE(base != nullptr);
    SUBSONIC_REQUIRE(pitch_x >= interior.nx + 2 * ghost);
    SUBSONIC_REQUIRE(pencil_stride >= pitch_x);
  }

  Extents3 interior() const { return interior_; }
  int nx() const { return interior_.nx; }
  int ny() const { return interior_.ny; }
  int nz() const { return interior_.nz; }
  int ghost() const { return ghost_; }

  int pitch() const { return pitch_x_; }
  /// Elements between consecutive pencils (== pitch for owning fields).
  int row_stride() const { return pencil_stride_; }
  bool contiguous() const { return view_ == nullptr; }

  std::size_t stored_count() const {
    return static_cast<std::size_t>(pitch_x_) * pitch_y_ * slabs_;
  }

  bool valid(int x, int y, int z) const {
    return x >= -ghost_ && x < interior_.nx + ghost_ && y >= -ghost_ &&
           y < interior_.ny + ghost_ && z >= -ghost_ &&
           z < interior_.nz + ghost_;
  }

  T& operator()(int x, int y, int z) { return base()[index(x, y, z)]; }
  const T& operator()(int x, int y, int z) const {
    return base()[index(x, y, z)];
  }

  T& at(int x, int y, int z) {
    SUBSONIC_REQUIRE(valid(x, y, z));
    return base()[index(x, y, z)];
  }
  const T& at(int x, int y, int z) const {
    SUBSONIC_REQUIRE(valid(x, y, z));
    return base()[index(x, y, z)];
  }

  void fill(T value) {
    if (view_ == nullptr) {
      data_.assign(data_.size(), value);
      return;
    }
    const std::size_t pencils =
        static_cast<std::size_t>(pitch_y_) * slabs_;
    for (std::size_t r = 0; r < pencils; ++r)
      std::fill_n(view_ + r * pencil_stride_, pitch_x_, value);
  }

  /// Contiguous storage of an *owning* field; views have none.
  std::span<T> raw() {
    SUBSONIC_REQUIRE(contiguous());
    return data_;
  }
  std::span<const T> raw() const {
    SUBSONIC_REQUIRE(contiguous());
    return data_;
  }

  /// Pointer p into pencil (y, z) with p[x] == (*this)(x, y, z); see the
  /// 2D row_ptr.
  T* row_ptr(int y, int z) { return base() + index(0, y, z); }
  const T* row_ptr(int y, int z) const {
    return base() + index(0, y, z);
  }

  /// Pointer to the start of pencil (y, z) at x = -ghost (row copies).
  T* row_begin(int y, int z) { return base() + index(-ghost_, y, z); }
  const T* row_begin(int y, int z) const {
    return base() + index(-ghost_, y, z);
  }

  friend bool operator==(const PaddedField3D& a, const PaddedField3D& b) {
    if (a.interior_ != b.interior_ || a.ghost_ != b.ghost_) return false;
    for (int z = -a.ghost_; z < a.nz() + a.ghost_; ++z)
      for (int y = -a.ghost_; y < a.ny() + a.ghost_; ++y)
        for (int x = -a.ghost_; x < a.nx() + a.ghost_; ++x)
          if (a(x, y, z) != b(x, y, z)) return false;
    return true;
  }

 private:
  std::size_t index(int x, int y, int z) const {
    return (static_cast<std::size_t>(z + ghost_) * pitch_y_ +
            static_cast<std::size_t>(y + ghost_)) *
               pencil_stride_ +
           static_cast<std::size_t>(x + ghost_);
  }

  T* base() { return view_ ? view_ : data_.data(); }
  const T* base() const { return view_ ? view_ : data_.data(); }

  Extents3 interior_{};
  int ghost_ = 0;
  int pitch_x_ = 0;
  int pitch_y_ = 0;
  int pencil_stride_ = 0;
  int slabs_ = 0;
  T* view_ = nullptr;  ///< external base when a view; null when owning
  std::vector<T, CacheAlignedAllocator<T>> data_;
};

}  // namespace subsonic
