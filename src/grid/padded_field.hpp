// Ghost-padded scalar fields.  Each subregion in the decomposition stores
// its interior nodes plus `ghost` layers of padding on every side (the
// paper's "padding" / ghost-cell technique, section 4.2): once neighbour
// boundary data has been copied into the padding, the stencil update of the
// interior needs no knowledge of communication at all.
//
// The row pitch can be padded beyond the logical width.  This exists for
// two reasons: (1) it reproduces Appendix E of the paper — on the HP9000/700
// a row length near a multiple of the 4096-byte page caused pathological
// cache behaviour, fixed by lengthening arrays by 200-300 bytes — and our
// bench_padding_4096 measures the modern analogue (set-associativity
// conflicts); (2) it allows alignment experiments without touching callers.
//
// Storage is 64-byte aligned and the pitch is a whole number of cache
// lines, so every row starts on a cache-line boundary and the vectorized
// kernels never straddle lines at row starts.  The base width (logical
// width + ghosts) and extra_pitch are each rounded up to whole lines
// separately: the Appendix-E experiments ask for N extra elements and get
// at least N, never fewer because the quantization of the base absorbed
// them.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "src/grid/aligned_alloc.hpp"
#include "src/grid/extents.hpp"
#include "src/util/check.hpp"

namespace subsonic {

/// 2D scalar field with `ghost` padding layers.  Interior coordinates are
/// [0, nx) x [0, ny); any coordinate in [-g, nx+g) x [-g, ny+g) is valid.
/// Storage is row-major with x fastest.
template <typename T>
class PaddedField2D {
 public:
  PaddedField2D() = default;

  /// `extra_pitch` adds unused elements to each row (Appendix E experiments).
  PaddedField2D(Extents2 interior, int ghost, int extra_pitch = 0)
      : interior_(interior), ghost_(ghost) {
    SUBSONIC_REQUIRE(interior.nx > 0 && interior.ny > 0);
    SUBSONIC_REQUIRE(ghost >= 0 && extra_pitch >= 0);
    // Rounding the sum would let the line quantization swallow the extra
    // entirely (width 10 + extra 5 still rounds to 16); quantizing the
    // extra separately guarantees at least `extra_pitch` elements beyond
    // the base pitch, as Appendix E asks for.
    pitch_ = round_pitch<T>(interior.nx + 2 * ghost) +
             round_pitch<T>(extra_pitch);
    rows_ = interior.ny + 2 * ghost;
    data_.assign(static_cast<std::size_t>(pitch_) * rows_, T{});
  }

  Extents2 interior() const { return interior_; }
  int nx() const { return interior_.nx; }
  int ny() const { return interior_.ny; }
  int ghost() const { return ghost_; }
  int pitch() const { return pitch_; }

  /// Number of stored elements including padding.
  std::size_t stored_count() const { return data_.size(); }

  bool valid(int x, int y) const {
    return x >= -ghost_ && x < interior_.nx + ghost_ && y >= -ghost_ &&
           y < interior_.ny + ghost_;
  }

  T& operator()(int x, int y) { return data_[index(x, y)]; }
  const T& operator()(int x, int y) const { return data_[index(x, y)]; }

  /// Bounds-checked access, for tests and non-hot paths.
  T& at(int x, int y) {
    SUBSONIC_REQUIRE(valid(x, y));
    return data_[index(x, y)];
  }
  const T& at(int x, int y) const {
    SUBSONIC_REQUIRE(valid(x, y));
    return data_[index(x, y)];
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  /// Pointer to the start of row y at x = -ghost (useful for row copies).
  T* row_begin(int y) { return data_.data() + index(-ghost_, y); }
  const T* row_begin(int y) const { return data_.data() + index(-ghost_, y); }

  /// Pointer p into row y such that p[x] == (*this)(x, y) for any valid x
  /// (including negative ghost coordinates).  The kernels hoist these per
  /// row so their inner loops run over raw __restrict pointers.
  T* row_ptr(int y) { return data_.data() + index(0, y); }
  const T* row_ptr(int y) const { return data_.data() + index(0, y); }

  friend bool operator==(const PaddedField2D& a, const PaddedField2D& b) {
    if (a.interior_ != b.interior_ || a.ghost_ != b.ghost_) return false;
    for (int y = -a.ghost_; y < a.ny() + a.ghost_; ++y)
      for (int x = -a.ghost_; x < a.nx() + a.ghost_; ++x)
        if (a(x, y) != b(x, y)) return false;
    return true;
  }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y + ghost_) * pitch_ +
           static_cast<std::size_t>(x + ghost_);
  }

  Extents2 interior_{};
  int ghost_ = 0;
  int pitch_ = 0;
  int rows_ = 0;
  std::vector<T, CacheAlignedAllocator<T>> data_;
};

/// 3D scalar field with ghost padding; x fastest, then y, then z.
template <typename T>
class PaddedField3D {
 public:
  PaddedField3D() = default;

  PaddedField3D(Extents3 interior, int ghost, int extra_pitch = 0)
      : interior_(interior), ghost_(ghost) {
    SUBSONIC_REQUIRE(interior.nx > 0 && interior.ny > 0 && interior.nz > 0);
    SUBSONIC_REQUIRE(ghost >= 0 && extra_pitch >= 0);
    // See PaddedField2D: quantize the extra separately so it is never
    // swallowed by the cache-line rounding of the base width.
    pitch_x_ = round_pitch<T>(interior.nx + 2 * ghost) +
               round_pitch<T>(extra_pitch);
    pitch_y_ = interior.ny + 2 * ghost;
    slabs_ = interior.nz + 2 * ghost;
    data_.assign(
        static_cast<std::size_t>(pitch_x_) * pitch_y_ * slabs_, T{});
  }

  Extents3 interior() const { return interior_; }
  int nx() const { return interior_.nx; }
  int ny() const { return interior_.ny; }
  int nz() const { return interior_.nz; }
  int ghost() const { return ghost_; }

  std::size_t stored_count() const { return data_.size(); }

  bool valid(int x, int y, int z) const {
    return x >= -ghost_ && x < interior_.nx + ghost_ && y >= -ghost_ &&
           y < interior_.ny + ghost_ && z >= -ghost_ &&
           z < interior_.nz + ghost_;
  }

  T& operator()(int x, int y, int z) { return data_[index(x, y, z)]; }
  const T& operator()(int x, int y, int z) const {
    return data_[index(x, y, z)];
  }

  T& at(int x, int y, int z) {
    SUBSONIC_REQUIRE(valid(x, y, z));
    return data_[index(x, y, z)];
  }
  const T& at(int x, int y, int z) const {
    SUBSONIC_REQUIRE(valid(x, y, z));
    return data_[index(x, y, z)];
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  /// Pointer p into pencil (y, z) with p[x] == (*this)(x, y, z); see the
  /// 2D row_ptr.
  T* row_ptr(int y, int z) { return data_.data() + index(0, y, z); }
  const T* row_ptr(int y, int z) const {
    return data_.data() + index(0, y, z);
  }

  /// Pointer to the start of pencil (y, z) at x = -ghost (row copies).
  T* row_begin(int y, int z) { return data_.data() + index(-ghost_, y, z); }
  const T* row_begin(int y, int z) const {
    return data_.data() + index(-ghost_, y, z);
  }

  friend bool operator==(const PaddedField3D& a, const PaddedField3D& b) {
    if (a.interior_ != b.interior_ || a.ghost_ != b.ghost_) return false;
    for (int z = -a.ghost_; z < a.nz() + a.ghost_; ++z)
      for (int y = -a.ghost_; y < a.ny() + a.ghost_; ++y)
        for (int x = -a.ghost_; x < a.nx() + a.ghost_; ++x)
          if (a(x, y, z) != b(x, y, z)) return false;
    return true;
  }

 private:
  std::size_t index(int x, int y, int z) const {
    return (static_cast<std::size_t>(z + ghost_) * pitch_y_ +
            static_cast<std::size_t>(y + ghost_)) *
               pitch_x_ +
           static_cast<std::size_t>(x + ghost_);
  }

  Extents3 interior_{};
  int ghost_ = 0;
  int pitch_x_ = 0;
  int pitch_y_ = 0;
  int slabs_ = 0;
  std::vector<T, CacheAlignedAllocator<T>> data_;
};

}  // namespace subsonic
