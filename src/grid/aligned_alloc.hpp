// Minimal cache-line-aligned allocator for the field storage.  The hot
// kernels read and write whole rows through raw pointers; starting every
// allocation (and, with the pitch rounded to a cache-line multiple, every
// row) on a 64-byte boundary means a vectorized row never splits a cache
// line and the compiler may use aligned loads where it can prove them.
#pragma once

#include <cstddef>
#include <new>

namespace subsonic {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  constexpr CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  friend bool operator==(CacheAlignedAllocator, CacheAlignedAllocator) {
    return true;
  }
};

/// CacheAlignedAllocator whose no-argument construct performs *default*
/// initialization — a no-op for trivial types — so vector::resize hands
/// back uninitialized storage instead of zero-filling it on the resizing
/// thread.  Large slabs are then first-touched in parallel by the worker
/// pool (first_touch_zero): under the kernel's NUMA first-touch policy
/// each page lands on the node of the thread that will work on it, which
/// a serial resize-time memset would defeat by homing every page on the
/// allocating thread's node.
template <typename T>
struct UninitCacheAlignedAllocator : CacheAlignedAllocator<T> {
  UninitCacheAlignedAllocator() = default;
  template <typename U>
  constexpr UninitCacheAlignedAllocator(
      const UninitCacheAlignedAllocator<U>&) noexcept {}

  template <typename U>
  void construct(U* p) noexcept(noexcept(::new(static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }

  friend bool operator==(UninitCacheAlignedAllocator,
                         UninitCacheAlignedAllocator) {
    return true;
  }
};

/// Rounds an element count up so a row of `T` occupies a whole number of
/// cache lines (identity when sizeof(T) does not divide the line size).
template <typename T>
constexpr int round_pitch(int elems) {
  constexpr std::size_t line = kCacheLineBytes;
  if constexpr (line % sizeof(T) == 0) {
    constexpr int per_line = static_cast<int>(line / sizeof(T));
    return (elems + per_line - 1) / per_line * per_line;
  } else {
    return elems;
  }
}

}  // namespace subsonic
