// Index-space primitives: grid extents and half-open index boxes in two and
// three dimensions.  All coordinates are signed (int) so that ghost-cell
// coordinates (negative) are representable without casts.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <ostream>

#include "src/util/check.hpp"

namespace subsonic {

/// Size of a 2D grid (interior nodes only, no padding).
struct Extents2 {
  int nx = 0;
  int ny = 0;

  constexpr std::int64_t count() const {
    return static_cast<std::int64_t>(nx) * ny;
  }
  constexpr bool contains(int x, int y) const {
    return x >= 0 && x < nx && y >= 0 && y < ny;
  }
  friend constexpr bool operator==(Extents2, Extents2) = default;
};

/// Size of a 3D grid.
struct Extents3 {
  int nx = 0;
  int ny = 0;
  int nz = 0;

  constexpr std::int64_t count() const {
    return static_cast<std::int64_t>(nx) * ny * nz;
  }
  constexpr bool contains(int x, int y, int z) const {
    return x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz;
  }
  friend constexpr bool operator==(Extents3, Extents3) = default;
};

/// Half-open index box [lo.x, hi.x) x [lo.y, hi.y).
struct Box2 {
  int x0 = 0, y0 = 0;  // inclusive
  int x1 = 0, y1 = 0;  // exclusive

  constexpr int width() const { return x1 - x0; }
  constexpr int height() const { return y1 - y0; }
  constexpr std::int64_t count() const {
    return static_cast<std::int64_t>(width()) * height();
  }
  constexpr bool empty() const { return x1 <= x0 || y1 <= y0; }
  constexpr bool contains(int x, int y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  constexpr Box2 intersect(const Box2& o) const {
    Box2 r{std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
           std::min(y1, o.y1)};
    if (r.empty()) return Box2{};
    return r;
  }

  /// Box grown by g nodes on every side (the padded footprint).
  constexpr Box2 grown(int g) const {
    return Box2{x0 - g, y0 - g, x1 + g, y1 + g};
  }

  friend constexpr bool operator==(const Box2&, const Box2&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Box2& b) {
    return os << "[" << b.x0 << "," << b.x1 << ")x[" << b.y0 << "," << b.y1
              << ")";
  }
};

/// Half-open index box in 3D.
struct Box3 {
  int x0 = 0, y0 = 0, z0 = 0;
  int x1 = 0, y1 = 0, z1 = 0;

  constexpr int width() const { return x1 - x0; }
  constexpr int height() const { return y1 - y0; }
  constexpr int depth() const { return z1 - z0; }
  constexpr std::int64_t count() const {
    return static_cast<std::int64_t>(width()) * height() * depth();
  }
  constexpr bool empty() const { return x1 <= x0 || y1 <= y0 || z1 <= z0; }
  constexpr bool contains(int x, int y, int z) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1 && z >= z0 && z < z1;
  }

  constexpr Box3 intersect(const Box3& o) const {
    Box3 r{std::max(x0, o.x0), std::max(y0, o.y0), std::max(z0, o.z0),
           std::min(x1, o.x1), std::min(y1, o.y1), std::min(z1, o.z1)};
    if (r.empty()) return Box3{};
    return r;
  }

  constexpr Box3 grown(int g) const {
    return Box3{x0 - g, y0 - g, z0 - g, x1 + g, y1 + g, z1 + g};
  }

  friend constexpr bool operator==(const Box3&, const Box3&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Box3& b) {
    return os << "[" << b.x0 << "," << b.x1 << ")x[" << b.y0 << "," << b.y1
              << ")x[" << b.z0 << "," << b.z1 << ")";
  }
};

constexpr Box2 full_box(Extents2 e) { return Box2{0, 0, e.nx, e.ny}; }
constexpr Box3 full_box(Extents3 e) {
  return Box3{0, 0, 0, e.nx, e.ny, e.nz};
}

}  // namespace subsonic
