// Reductions and element-wise helpers over padded fields.  All interior-only
// (ghost values are communication scratch and must not affect norms).
#pragma once

#include <algorithm>
#include <cmath>

#include "src/grid/padded_field.hpp"

namespace subsonic {

/// max |a - b| over the interior.  Fields must have identical extents.
template <typename T>
T max_abs_diff(const PaddedField2D<T>& a, const PaddedField2D<T>& b) {
  SUBSONIC_REQUIRE(a.interior() == b.interior());
  T worst{};
  for (int y = 0; y < a.ny(); ++y)
    for (int x = 0; x < a.nx(); ++x)
      worst = std::max(worst, static_cast<T>(std::abs(a(x, y) - b(x, y))));
  return worst;
}

template <typename T>
T max_abs_diff(const PaddedField3D<T>& a, const PaddedField3D<T>& b) {
  SUBSONIC_REQUIRE(a.interior() == b.interior());
  T worst{};
  for (int z = 0; z < a.nz(); ++z)
    for (int y = 0; y < a.ny(); ++y)
      for (int x = 0; x < a.nx(); ++x)
        worst = std::max(worst,
                         static_cast<T>(std::abs(a(x, y, z) - b(x, y, z))));
  return worst;
}

/// max |a| over the interior.
template <typename T>
T max_abs(const PaddedField2D<T>& a) {
  T worst{};
  for (int y = 0; y < a.ny(); ++y)
    for (int x = 0; x < a.nx(); ++x)
      worst = std::max(worst, static_cast<T>(std::abs(a(x, y))));
  return worst;
}

template <typename T>
T max_abs(const PaddedField3D<T>& a) {
  T worst{};
  for (int z = 0; z < a.nz(); ++z)
    for (int y = 0; y < a.ny(); ++y)
      for (int x = 0; x < a.nx(); ++x)
        worst = std::max(worst, static_cast<T>(std::abs(a(x, y, z))));
  return worst;
}

/// Discrete L2 norm over the interior: sqrt(sum a^2 / count).
template <typename T>
double l2_norm(const PaddedField2D<T>& a) {
  double sum = 0;
  for (int y = 0; y < a.ny(); ++y)
    for (int x = 0; x < a.nx(); ++x) sum += double(a(x, y)) * a(x, y);
  return std::sqrt(sum / double(a.interior().count()));
}

/// Sum over the interior (e.g. total mass of a density field).
template <typename T>
double interior_sum(const PaddedField2D<T>& a) {
  double sum = 0;
  for (int y = 0; y < a.ny(); ++y)
    for (int x = 0; x < a.nx(); ++x) sum += a(x, y);
  return sum;
}

template <typename T>
double interior_sum(const PaddedField3D<T>& a) {
  double sum = 0;
  for (int z = 0; z < a.nz(); ++z)
    for (int y = 0; y < a.ny(); ++y)
      for (int x = 0; x < a.nx(); ++x) sum += a(x, y, z);
  return sum;
}

}  // namespace subsonic
