// Minimal leveled logger.  The distributed runtime and the cluster
// simulator log protocol events (migrations, synchronizations, channel
// lifecycle); tests silence it by default.
#pragma once

#include <sstream>
#include <string>

namespace subsonic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: SUBSONIC_LOG(kInfo) << "migrated " << pid;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace subsonic

#define SUBSONIC_LOG(level) \
  ::subsonic::LogLine(::subsonic::LogLevel::level)
