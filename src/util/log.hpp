// Minimal leveled logger.  The distributed runtime and the cluster
// simulator log protocol events (migrations, synchronizations, channel
// lifecycle); tests silence it by default.
//
// Each line carries a monotonic timestamp (seconds since the process's
// first log touch) and, when a rank has installed one via
// set_log_context, a "[rank r step s]" prefix — so interleaved output
// from the threaded drivers or a supervisor's rank-tagged children reads
// back as a timeline.  The initial threshold honours the SUBSONIC_LOG
// environment variable (debug|info|warn|error|off); default warn.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace subsonic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.  The initial
/// value comes from SUBSONIC_LOG when set, else kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug"/"info"/"warn"/"error"/"off" (case-insensitive, also accepts
/// the numeric enum value); nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Install a [rank r step s] prefix for lines logged by this thread.
/// step < 0 omits the step; clear_log_context removes the prefix.
void set_log_context(int rank, long step = -1);
void clear_log_context();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
/// The full line as emitted (sans trailing newline) — exposed for tests.
std::string format_log_line(LogLevel level, const std::string& message);
}

/// Stream-style log statement: SUBSONIC_LOG(kInfo) << "migrated " << pid;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace subsonic

#define SUBSONIC_LOG(level) \
  ::subsonic::LogLine(::subsonic::LogLevel::level)
