// Deterministic fault injection for the process runtime.  A FaultPlan is
// parsed from the SUBSONIC_FAULTS environment variable (or an explicit
// spec string) and threaded through the supervisor into every child, so
// integration tests — and CI — can kill ranks mid-run, tear checkpoint
// writes, and delay connections, then assert the supervised runtime still
// produces bitwise-correct results.
//
// Grammar (';'-separated faults, ','-separated key=value args):
//
//   kill:rank=R,step=S[,gen=G]          rank R raises SIGKILL when its
//                                       step counter reaches S
//   torn_dump:rank=R,epoch=E[,gen=G]    rank R writes only a prefix of its
//                                       epoch-E dump (bypassing the atomic
//                                       tmp+rename protocol), then SIGKILLs
//                                       itself — a crash mid-checkpoint
//   delay_connect:rank=R,ms=M[,gen=G]   rank R sleeps M milliseconds before
//                                       opening its endpoint, delaying both
//                                       registration and connection
//   slow:rank=R,permille=P[,gen=G]      rank R busy-spins for P/1000 of each
//                                       compute phase's elapsed time right
//                                       after it — a CPU that is (1+P/1000)x
//                                       slower, scaling with the work the
//                                       rank actually does (so moving work
//                                       off the rank shrinks the penalty,
//                                       exactly like a real slow host)
//   hang:rank=R,step=S[,gen=G][,hard=1] rank R stops heartbeating and spins
//                                       forever when its step counter
//                                       reaches S — a livelock/deadlock the
//                                       watchdog must detect; hard=1 also
//                                       blocks SIGTERM so the supervisor's
//                                       graceful escalation has to fall
//                                       through to SIGKILL
//   mute:rank=R,step=S[,gen=G]          rank R keeps computing normally but
//                                       stops sending heartbeats at step S —
//                                       a watchdog false positive the
//                                       runtime must still recover from
//                                       bitwise
//   spawn_fail:rank=R[,gen=G]           launching rank R in generation G
//                                       fails before a child process exists
//                                       — a dead workstation the launcher
//                                       reports immediately, which the
//                                       supervisor must surface as a clean
//                                       ProcessRunError (naming the rank
//                                       and host) instead of leaving a
//                                       partial cohort hanging
//
// Each fault applies to exactly one supervisor generation (the cohort
// spawn count, 0 for the first launch; default gen=0), so an injected
// crash does not re-fire after the supervisor respawns the cohort.  The
// slow fault defaults to gen=-1 — every generation — because a slow host
// stays slow across respawns and rebalance segments.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace subsonic {

class FaultPlan {
 public:
  struct Kill {
    int rank = -1;
    long step = 0;
    int gen = 0;
  };
  struct TornDump {
    int rank = -1;
    long epoch = 0;
    int gen = 0;
  };
  struct DelayConnect {
    int rank = -1;
    int ms = 0;
    int gen = 0;
  };
  struct Slow {
    int rank = -1;
    int permille = 0;  ///< extra busy-spin per unit compute, in 1/1000
    int gen = -1;      ///< -1: every generation
  };
  struct Hang {
    int rank = -1;
    long step = 0;
    int gen = 0;
    bool hard = false;  ///< block SIGTERM, forcing the SIGKILL path
  };
  struct Mute {
    int rank = -1;
    long step = 0;
    int gen = 0;
  };
  struct SpawnFail {
    int rank = -1;
    int gen = 0;
  };

  FaultPlan() = default;

  /// Parses a spec string; throws std::invalid_argument (with the
  /// offending clause in the message) on any grammar violation.
  static FaultPlan parse(const std::string& spec);

  /// Parses SUBSONIC_FAULTS, or returns an empty plan when it is unset.
  static FaultPlan from_env();

  bool empty() const {
    return kills_.empty() && torn_dumps_.empty() && delays_.empty() &&
           slows_.empty() && hangs_.empty() && mutes_.empty() &&
           spawn_fails_.empty();
  }

  /// The step at which `rank` must kill itself in generation `gen`, if any.
  std::optional<long> kill_step(int rank, int gen) const;

  /// True when `rank`'s write of epoch `e` must be torn in generation `gen`.
  bool torn_dump(int rank, long epoch, int gen) const;

  /// Milliseconds `rank` sleeps before opening its endpoint (0 = none).
  int delay_connect_ms(int rank, int gen) const;

  /// Extra busy-spin of `rank` in generation `gen`, as 1/1000 of each
  /// compute phase's elapsed time (0 = full speed).
  int slow_permille(int rank, int gen) const;

  /// The hang fault for `rank` in generation `gen`, if any: at the
  /// returned step the rank must stop heartbeating and spin forever
  /// (blocking SIGTERM first when `hard`).
  std::optional<Hang> hang_at(int rank, int gen) const;

  /// The step at which `rank` must go heartbeat-silent (but keep
  /// computing) in generation `gen`, if any.
  std::optional<long> mute_step(int rank, int gen) const;

  /// True when launching `rank` in generation `gen` must fail outright
  /// (before any child process exists).
  bool spawn_fail(int rank, int gen) const;

  const std::vector<Kill>& kills() const { return kills_; }
  const std::vector<TornDump>& torn_dumps() const { return torn_dumps_; }
  const std::vector<DelayConnect>& delays() const { return delays_; }
  const std::vector<Slow>& slows() const { return slows_; }
  const std::vector<Hang>& hangs() const { return hangs_; }
  const std::vector<Mute>& mutes() const { return mutes_; }
  const std::vector<SpawnFail>& spawn_fails() const { return spawn_fails_; }

 private:
  std::vector<Kill> kills_;
  std::vector<TornDump> torn_dumps_;
  std::vector<DelayConnect> delays_;
  std::vector<Slow> slows_;
  std::vector<Hang> hangs_;
  std::vector<Mute> mutes_;
  std::vector<SpawnFail> spawn_fails_;
};

/// Busy-spins (never sleeps — a slow CPU stays busy, it does not yield)
/// for `elapsed_s * permille / 1000` seconds.  No-op for permille <= 0.
void spin_slow_penalty(double elapsed_s, int permille);

}  // namespace subsonic
