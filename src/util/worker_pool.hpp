// Persistent intra-subregion thread pool.  The paper's efficiency model
// f = (1 + T_com/T_calc)^-1 treats T_calc as fixed; once T_com is hidden
// behind the interior computation (the overlap schedule), the only lever
// left is making T_calc itself smaller.  Every kernel pass in this repo
// iterates independent rows (2D rows, 3D (y, z) pencils) that write
// disjoint output rows, so a *static* contiguous partition of the row
// range across threads computes every row with exactly the same arithmetic
// as the serial loop — the result is bitwise identical for any thread
// count, which is what lets the thread knob stay out of the physics.
//
// The pool is persistent (std::thread, no OpenMP dependency): workers are
// spawned once and parked on a condition variable between parallel
// regions, so per-call overhead is one wake/sleep cycle instead of a
// thread spawn.  The calling thread always executes chunk 0 itself.
#pragma once

#include <algorithm>
#include <cstring>
#include <exception>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace subsonic {

class WorkerPool {
 public:
  /// A pool of `threads` workers in total; `threads - 1` background
  /// std::threads are spawned (the caller of for_range is the remaining
  /// worker).  `threads` must be >= 1.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return thread_count_; }

  /// Splits [lo, hi) into `threads()` contiguous chunks and calls
  /// fn(chunk_lo, chunk_hi) concurrently, one chunk per worker (empty
  /// chunks are skipped).  Blocks until every chunk is done; rethrows the
  /// first exception any chunk threw.  The partition depends only on
  /// (lo, hi, threads()), never on timing.
  void for_range(int lo, int hi, const std::function<void(int, int)>& fn);

  /// Like for_range, but the contiguous chunk boundaries are placed by
  /// cumulative `weight(i)` instead of index count — the spans-weighted
  /// static partition: when wall rows cluster at one end of a subregion,
  /// the equal-count split leaves the threads owning the fluid end with
  /// most of the work.  The partition depends only on (lo, hi, threads(),
  /// the weights), never on timing, so results stay bitwise identical for
  /// any thread count; only the wall-clock balance changes.
  void for_weighted(int lo, int hi,
                    const std::function<long long(int)>& weight,
                    const std::function<void(int, int)>& fn);

  /// The deterministic chunk of worker `t`: [chunk_begin(lo, hi, t, T),
  /// chunk_begin(lo, hi, t + 1, T)).  Exposed for tests.
  static int chunk_begin(int lo, int hi, int t, int threads) {
    const long long n = static_cast<long long>(hi) - lo;
    return lo + static_cast<int>(n * t / threads);
  }

  /// The weighted partition of [lo, hi): returns `threads + 1` ascending
  /// boundaries with bounds[0] == lo and bounds[threads] == hi; worker t
  /// owns [bounds[t], bounds[t+1]).  Each index contributes weight(i) + 1
  /// (the +1 is the fixed per-row cost — it keeps all-zero-weight ranges
  /// splitting evenly instead of collapsing onto one worker), and the
  /// boundary after worker t is the first index where the cumulative
  /// weight reaches t+1 shares of the total.  Exposed for tests.
  static std::vector<int> weighted_bounds(
      int lo, int hi, int threads,
      const std::function<long long(int)>& weight);

 private:
  void worker_main(int id);
  void run_chunk(int id) noexcept;
  void dispatch(const std::function<void(int, int)>& fn);

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* job_ = nullptr;  // guarded by mutex_
  int job_lo_ = 0, job_hi_ = 0;
  const int* job_bounds_ = nullptr;  // weighted partition; null = equal-count
  std::vector<int> bounds_;  // storage for job_bounds_
  long epoch_ = 0;      // bumped per parallel region; workers wake on change
  int outstanding_ = 0;  // background chunks not yet finished
  bool stop_ = false;
  std::exception_ptr first_error_;  // guarded by mutex_
};

/// Zero-fills [p, p + n) sharded over `pool` (plain memset when null).
/// Used right after an uninitialized slab allocation: on NUMA machines the
/// OS homes each page on the node of the thread that first writes it, so
/// zeroing with the same static partition the kernels later use places
/// every page next to its worker.  The partition is the pool's equal-count
/// chunking — deterministic, and matching for_range's layout.
inline void first_touch_zero(WorkerPool* pool, double* p, std::size_t n) {
  // Chunk in cache-line units so two workers never split a line (and,
  // transitively, never split a page except at chunk boundaries).
  const int lines = static_cast<int>((n + 7) / 8);
  const auto zero = [p, n](int lo, int hi) {
    const std::size_t a = static_cast<std::size_t>(lo) * 8;
    const std::size_t b = std::min(n, static_cast<std::size_t>(hi) * 8);
    if (b > a) std::memset(p + a, 0, (b - a) * sizeof(double));
  };
  if (pool && lines > 1) {
    pool->for_range(0, lines, zero);
  } else {
    zero(0, lines);
  }
}

/// Resolves a driver/domain `threads` knob: values >= 1 are taken as-is;
/// 0 (the default everywhere) means "use the SUBSONIC_THREADS environment
/// variable, or 1 if unset/invalid".  Centralizing the env lookup lets CI
/// run whole existing suites with the pool engaged (e.g. TSan with
/// SUBSONIC_THREADS=2) without touching each call site.
int resolve_threads(int requested);

}  // namespace subsonic
