// Wall-clock stopwatch used for calibration micro-measurements (the paper
// used gettimeofday; steady_clock is the modern equivalent).
#pragma once

#include <chrono>

namespace subsonic {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace subsonic
