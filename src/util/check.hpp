// Runtime contract checks. Kept active in all build types: the cost is
// negligible next to the stencil loops, and silent out-of-contract use is
// the dominant failure mode in grid index arithmetic.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace subsonic {

/// Thrown when a SUBSONIC_CHECK / SUBSONIC_REQUIRE contract is violated.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace subsonic

/// Precondition check (argument validation at API boundaries).
#define SUBSONIC_REQUIRE(expr)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::subsonic::detail::contract_fail("precondition", #expr, __FILE__,    \
                                        __LINE__, {});                      \
  } while (0)

#define SUBSONIC_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::subsonic::detail::contract_fail("precondition", #expr, __FILE__,    \
                                        __LINE__, (msg));                   \
  } while (0)

/// Internal invariant check.
#define SUBSONIC_CHECK(expr)                                                \
  do {                                                                      \
    if (!(expr))                                                            \
      ::subsonic::detail::contract_fail("invariant", #expr, __FILE__,       \
                                        __LINE__, {});                      \
  } while (0)
