#include "src/util/provenance.hpp"

#include <algorithm>
#include <fstream>
#include <thread>

#ifndef SUBSONIC_CXX_FLAGS
#define SUBSONIC_CXX_FLAGS "unknown"
#endif
#ifndef SUBSONIC_BUILD_TYPE
#define SUBSONIC_BUILD_TYPE "unknown"
#endif

namespace subsonic {

namespace {

std::string cpu_model_name() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto key = line.find("model name");
    if (key == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto value = line.substr(colon + 1);
    const auto first = value.find_first_not_of(" \t");
    return first == std::string::npos ? value : value.substr(first);
  }
  return "unknown";
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

Provenance collect_provenance() {
  Provenance p;
  p.cpu_model = cpu_model_name();
  p.hardware_threads = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  p.compiler = compiler_id();
  p.flags = SUBSONIC_CXX_FLAGS;
  p.build_type = SUBSONIC_BUILD_TYPE;
  return p;
}

std::string provenance_json(const Provenance& p) {
  std::string out = "{\"cpu_model\": \"";
  append_escaped(out, p.cpu_model);
  out += "\", \"hardware_threads\": " + std::to_string(p.hardware_threads);
  out += ", \"compiler\": \"";
  append_escaped(out, p.compiler);
  out += "\", \"flags\": \"";
  append_escaped(out, p.flags);
  out += "\", \"build_type\": \"";
  append_escaped(out, p.build_type);
  out += "\"}";
  return out;
}

}  // namespace subsonic
