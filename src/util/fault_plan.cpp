#include "src/util/fault_plan.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace subsonic {

namespace {

[[noreturn]] void bad_spec(const std::string& clause, const char* why) {
  throw std::invalid_argument("bad SUBSONIC_FAULTS clause \"" + clause +
                              "\": " + why);
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\n");
  if (begin == std::string::npos) return "";
  return s.substr(begin, s.find_last_not_of(" \t\n") - begin + 1);
}

/// Splits "rank=2,step=7" into {rank: 2, step: 7}; every value must be a
/// plain base-10 integer.
std::map<std::string, long> parse_args(const std::string& clause,
                                       const std::string& args) {
  std::map<std::string, long> out;
  std::istringstream in(args);
  std::string kv;
  while (std::getline(in, kv, ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0)
      bad_spec(clause, "expected key=value");
    const std::string key = trim(kv.substr(0, eq));
    const std::string value = trim(kv.substr(eq + 1));
    if (key.empty() || value.empty()) bad_spec(clause, "expected key=value");
    std::size_t used = 0;
    long parsed = 0;
    try {
      parsed = std::stol(value, &used);
    } catch (const std::exception&) {
      bad_spec(clause, "value is not an integer");
    }
    if (used != value.size()) bad_spec(clause, "value is not an integer");
    if (!out.emplace(key, parsed).second)
      bad_spec(clause, "duplicate key");
  }
  return out;
}

long take(std::map<std::string, long>& args, const std::string& clause,
          const char* key) {
  const auto it = args.find(key);
  if (it == args.end())
    bad_spec(clause, (std::string("missing key ") + key).c_str());
  const long v = it->second;
  args.erase(it);
  return v;
}

long take_or(std::map<std::string, long>& args, const char* key,
             long fallback) {
  const auto it = args.find(key);
  if (it == args.end()) return fallback;
  const long v = it->second;
  args.erase(it);
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string raw;
  while (std::getline(in, raw, ';')) {
    const std::string clause = trim(raw);
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos) bad_spec(clause, "expected kind:args");
    const std::string kind = trim(clause.substr(0, colon));
    auto args = parse_args(clause, clause.substr(colon + 1));
    if (kind == "kill") {
      Kill k;
      k.rank = static_cast<int>(take(args, clause, "rank"));
      k.step = take(args, clause, "step");
      k.gen = static_cast<int>(take_or(args, "gen", 0));
      plan.kills_.push_back(k);
    } else if (kind == "torn_dump") {
      TornDump t;
      t.rank = static_cast<int>(take(args, clause, "rank"));
      t.epoch = take(args, clause, "epoch");
      t.gen = static_cast<int>(take_or(args, "gen", 0));
      plan.torn_dumps_.push_back(t);
    } else if (kind == "delay_connect") {
      DelayConnect d;
      d.rank = static_cast<int>(take(args, clause, "rank"));
      d.ms = static_cast<int>(take(args, clause, "ms"));
      d.gen = static_cast<int>(take_or(args, "gen", 0));
      plan.delays_.push_back(d);
    } else if (kind == "slow") {
      Slow s;
      s.rank = static_cast<int>(take(args, clause, "rank"));
      s.permille = static_cast<int>(take(args, clause, "permille"));
      s.gen = static_cast<int>(take_or(args, "gen", -1));
      if (s.permille < 0) bad_spec(clause, "permille must be non-negative");
      plan.slows_.push_back(s);
    } else if (kind == "hang") {
      Hang h;
      h.rank = static_cast<int>(take(args, clause, "rank"));
      h.step = take(args, clause, "step");
      h.gen = static_cast<int>(take_or(args, "gen", 0));
      const long hard = take_or(args, "hard", 0);
      if (hard != 0 && hard != 1) bad_spec(clause, "hard must be 0 or 1");
      h.hard = hard == 1;
      plan.hangs_.push_back(h);
    } else if (kind == "mute") {
      Mute m;
      m.rank = static_cast<int>(take(args, clause, "rank"));
      m.step = take(args, clause, "step");
      m.gen = static_cast<int>(take_or(args, "gen", 0));
      plan.mutes_.push_back(m);
    } else if (kind == "spawn_fail") {
      SpawnFail s;
      s.rank = static_cast<int>(take(args, clause, "rank"));
      s.gen = static_cast<int>(take_or(args, "gen", 0));
      plan.spawn_fails_.push_back(s);
    } else {
      bad_spec(clause, "unknown fault kind");
    }
    if (!args.empty()) bad_spec(clause, "unknown key");
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("SUBSONIC_FAULTS");
  return spec ? parse(spec) : FaultPlan{};
}

std::optional<long> FaultPlan::kill_step(int rank, int gen) const {
  for (const Kill& k : kills_)
    if (k.rank == rank && k.gen == gen) return k.step;
  return std::nullopt;
}

bool FaultPlan::torn_dump(int rank, long epoch, int gen) const {
  for (const TornDump& t : torn_dumps_)
    if (t.rank == rank && t.epoch == epoch && t.gen == gen) return true;
  return false;
}

int FaultPlan::delay_connect_ms(int rank, int gen) const {
  for (const DelayConnect& d : delays_)
    if (d.rank == rank && d.gen == gen) return d.ms;
  return 0;
}

int FaultPlan::slow_permille(int rank, int gen) const {
  for (const Slow& s : slows_)
    if (s.rank == rank && (s.gen == -1 || s.gen == gen)) return s.permille;
  return 0;
}

std::optional<FaultPlan::Hang> FaultPlan::hang_at(int rank, int gen) const {
  for (const Hang& h : hangs_)
    if (h.rank == rank && h.gen == gen) return h;
  return std::nullopt;
}

std::optional<long> FaultPlan::mute_step(int rank, int gen) const {
  for (const Mute& m : mutes_)
    if (m.rank == rank && m.gen == gen) return m.step;
  return std::nullopt;
}

bool FaultPlan::spawn_fail(int rank, int gen) const {
  for (const SpawnFail& s : spawn_fails_)
    if (s.rank == rank && s.gen == gen) return true;
  return false;
}

void spin_slow_penalty(double elapsed_s, int permille) {
  if (permille <= 0 || elapsed_s <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(elapsed_s * permille / 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // Burn cycles: a slowed CPU is still running, so the penalty must not
    // yield the core to other local ranks the way a sleep would.
    volatile int sink = 0;
    for (int i = 0; i < 1024; ++i) sink = sink + i;
  }
}

}  // namespace subsonic
