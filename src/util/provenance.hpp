// Machine/toolchain provenance for committed benchmark results.  A perf
// number without the machine it was measured on is noise once the repo
// moves hosts; every BENCH_*.json embeds this record so the trajectory
// stays comparable (or is visibly *not* comparable) across machines.
#pragma once

#include <string>

namespace subsonic {

struct Provenance {
  std::string cpu_model;     ///< /proc/cpuinfo "model name" (or "unknown")
  int hardware_threads = 0;  ///< std::thread::hardware_concurrency()
  std::string compiler;      ///< e.g. "gcc 13.2.0"
  std::string flags;         ///< effective CMAKE_CXX_FLAGS at build time
  std::string build_type;    ///< CMAKE_BUILD_TYPE
};

/// Gathers the provenance of the running binary.
Provenance collect_provenance();

/// The record as a JSON object, e.g. for embedding under a "provenance"
/// key: {"cpu_model": "...", "hardware_threads": 8, ...}.
std::string provenance_json(const Provenance& p);

}  // namespace subsonic
