#include "src/util/worker_pool.hpp"

#include <cstdlib>

#include "src/util/check.hpp"

namespace subsonic {

WorkerPool::WorkerPool(int threads) : thread_count_(threads) {
  SUBSONIC_REQUIRE(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int id = 1; id < threads; ++id)
    workers_.emplace_back([this, id] { worker_main(id); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::vector<int> WorkerPool::weighted_bounds(
    int lo, int hi, int threads,
    const std::function<long long(int)>& weight) {
  SUBSONIC_REQUIRE(threads >= 1 && lo <= hi);
  std::vector<int> bounds(static_cast<size_t>(threads) + 1, hi);
  bounds[0] = lo;
  long long total = 0;
  for (int i = lo; i < hi; ++i) total += weight(i) + 1;
  // Boundary t (1 <= t < threads) is the first index whose cumulative
  // weight reaches t shares of the total — the weighted analogue of
  // chunk_begin's `lo + n * t / threads`.  One forward pass places every
  // boundary: cum * threads crosses t * total in nondecreasing t order.
  long long cum = 0;
  int t = 1;
  for (int i = lo; i < hi && t < threads; ++i) {
    cum += weight(i) + 1;
    while (t < threads &&
           cum * threads >= total * static_cast<long long>(t))
      bounds[static_cast<size_t>(t++)] = i + 1;
  }
  return bounds;
}

void WorkerPool::run_chunk(int id) noexcept {
  int lo, hi;
  if (job_bounds_) {
    lo = job_bounds_[id];
    hi = job_bounds_[id + 1];
  } else {
    lo = chunk_begin(job_lo_, job_hi_, id, thread_count_);
    hi = chunk_begin(job_lo_, job_hi_, id + 1, thread_count_);
  }
  if (lo >= hi) return;
  try {
    (*job_)(lo, hi);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void WorkerPool::worker_main(int id) {
  long seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    // job_/job_lo_/job_hi_/job_bounds_ are stable for the whole epoch:
    // the caller only mutates them under the mutex after every chunk
    // reported done.
    run_chunk(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::dispatch(const std::function<void(int, int)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    outstanding_ = thread_count_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  job_ = nullptr;
  job_bounds_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void WorkerPool::for_range(int lo, int hi,
                           const std::function<void(int, int)>& fn) {
  if (lo >= hi) return;
  if (thread_count_ == 1) {
    fn(lo, hi);
    return;
  }
  job_lo_ = lo;
  job_hi_ = hi;
  job_bounds_ = nullptr;
  dispatch(fn);
}

void WorkerPool::for_weighted(int lo, int hi,
                              const std::function<long long(int)>& weight,
                              const std::function<void(int, int)>& fn) {
  if (lo >= hi) return;
  if (thread_count_ == 1) {
    fn(lo, hi);
    return;
  }
  bounds_ = weighted_bounds(lo, hi, thread_count_, weight);
  job_lo_ = lo;
  job_hi_ = hi;
  job_bounds_ = bounds_.data();
  dispatch(fn);
}

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("SUBSONIC_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 1;
}

}  // namespace subsonic
