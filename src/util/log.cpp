#include "src/util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace subsonic {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("SUBSONIC_LOG"))
    if (const auto parsed = parse_log_level(env)) return *parsed;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_store() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

std::mutex g_emit_mutex;

struct LogContext {
  bool active = false;
  int rank = 0;
  long step = -1;
};
thread_local LogContext t_context;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

}  // namespace

void set_log_level(LogLevel level) { level_store().store(level); }
LogLevel log_level() { return level_store().load(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text)
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2")
    return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_context(int rank, long step) {
  t_context.active = true;
  t_context.rank = rank;
  t_context.step = step;
}

void clear_log_context() { t_context = LogContext{}; }

namespace detail {

std::string format_log_line(LogLevel level, const std::string& message) {
  char head[96];
  std::snprintf(head, sizeof head, "[%10.6f] [%s] ", seconds_since_start(),
                level_name(level));
  std::string line = head;
  if (t_context.active) {
    char ctx[64];
    if (t_context.step >= 0)
      std::snprintf(ctx, sizeof ctx, "[rank %d step %ld] ", t_context.rank,
                    t_context.step);
    else
      std::snprintf(ctx, sizeof ctx, "[rank %d] ", t_context.rank);
    line += ctx;
  }
  line += message;
  return line;
}

void log_emit(LogLevel level, const std::string& message) {
  const std::string line = format_log_line(level, message);
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace detail

}  // namespace subsonic
