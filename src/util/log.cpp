#include "src/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace subsonic {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace subsonic
