// CRC32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320) used to
// verify checkpoint payloads.  A dump that survived an atomic rename is
// complete, but a torn write injected past the atomic protocol — or plain
// disk corruption — must never restore silently; the checksum in the dump
// header is the last line of defence.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace subsonic {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC32 of `len` bytes at `data`.  Pass a previous result as `seed` to
/// checksum a stream incrementally; the default seed starts a fresh sum.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace subsonic
