// Deterministic, splittable pseudo-random generator used everywhere a
// reproducible stream is needed (initial perturbations, background-load
// traces in the cluster simulator, property-test sweeps).
#pragma once

#include <cstdint>
#include <limits>

namespace subsonic {

/// xoshiro256** seeded through SplitMix64.  Deterministic across platforms,
/// unlike std::default_random_engine / std::uniform_real_distribution.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t below(std::uint64_t n) {
    // Modulo reduction; bias is < n / 2^64, irrelevant for simulation
    // workloads (and avoids the non-standard 128-bit multiply).
    return (*this)() % n;
  }

  /// Derive an independent child stream (for per-subregion/per-host RNGs).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace subsonic
