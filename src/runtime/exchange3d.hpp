// 3D ghost-exchange plans; see exchange2d.hpp.  A rank has up to 26
// neighbours (full stencil); direction indices are (dz+1)*9+(dy+1)*3+(dx+1).
#pragma once

#include <vector>

#include "src/decomp/decomposition.hpp"
#include "src/solver/domain3d.hpp"

namespace subsonic {

struct LinkPlan3D {
  int peer = -1;
  int dir = 0;
  int peer_dir = 0;
  Box3 send_box;
  Box3 recv_box;
};

std::vector<LinkPlan3D> make_link_plans3d(const Decomposition3D& d, int rank,
                                          int ghost, bool periodic_x,
                                          bool periodic_y, bool periodic_z,
                                          const std::vector<bool>& active);

std::vector<double> pack3d(const Domain3D& dom,
                           const std::vector<FieldId>& fields, Box3 box);

void unpack3d(Domain3D& dom, const std::vector<FieldId>& fields, Box3 box,
              const std::vector<double>& payload);

}  // namespace subsonic
