// Checkpoint-epoch bookkeeping for the supervised process runtime (the
// paper's "orderly staggered saving of state", section 4.1).  Every
// `checkpoint_interval` steps each rank writes rank_<r>.epoch_<e>.dump
// into the working directory (atomically — tmp + fsync + rename).  The
// supervisor commits an epoch by atomically rewriting the MANIFEST file
// once it has verified a durable, CRC-clean dump from *every* active
// rank, so a restart always resumes from the newest epoch whose dumps are
// known-complete — never from a half-saved one.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace subsonic {

namespace epoch {

/// "MANIFEST" in `workdir`: the supervisor's commit record.
std::string manifest_path(const std::string& workdir);

/// "rank_<r>.epoch_<e>.dump" in `workdir`.
std::string dump_path(const std::string& workdir, int rank, long e);

/// "block_<b>.epoch_<e>.dump" in `workdir` — the over-decomposed runtime's
/// epoch dumps.  Block dumps are keyed by block id, never by owning rank,
/// which is what lets a restart resume under a rewritten owner map (each
/// block restores its own state wherever it now lives).
std::string block_dump_path(const std::string& workdir, int block, long e);

struct Manifest {
  long epoch = -1;         ///< newest complete epoch
  long step = 0;           ///< step counter all its dumps carry
  std::vector<int> ranks;  ///< active ranks whose dumps were verified
};

/// Atomically (re)writes the MANIFEST.
void commit_manifest(const std::string& workdir, const Manifest& m);

/// Reads the MANIFEST; nullopt when absent or unparsable (a torn or
/// foreign file counts as "no committed epoch", never as an error).
std::optional<Manifest> read_manifest(const std::string& workdir);

/// Deletes epoch dumps older than `keep_from` for the given ranks — once
/// epoch e is committed, epochs < e can never be restored again.
void gc_epochs(const std::string& workdir, const std::vector<int>& ranks,
               long keep_from);

/// Same for block epoch dumps (`blocks` are block ids).
void gc_block_epochs(const std::string& workdir,
                     const std::vector<int>& blocks, long keep_from);

/// Start-of-run hygiene: removes the MANIFEST, every rank_*.epoch_*.dump /
/// block_*.epoch_*.dump and every *.tmp straggler in `workdir`, so state
/// left by a crashed prior run can never wedge or corrupt a fresh one (the
/// checkpoint analogue of the fresh port registry).
void clear_run_state(const std::string& workdir);

}  // namespace epoch

}  // namespace subsonic
