#include "src/runtime/process3d.hpp"

namespace subsonic {

ProcessRunResult run_multiprocess3d(const Mask3D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int jz, int steps,
                                    const std::string& workdir,
                                    const ProcessRunOptions& options) {
  return run_supervised<3>(mask, params, method, GridShape{jx, jy, jz},
                           steps, workdir, options);
}

ProcessRunResult run_multiprocess3d(const Mask3D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int jz, int steps,
                                    const std::string& workdir,
                                    Scheduling sched, int threads) {
  ProcessRunOptions options;
  options.sched = sched;
  options.threads = threads;
  return run_multiprocess3d(mask, params, method, jx, jy, jz, steps, workdir,
                            options);
}

}  // namespace subsonic
