// Threaded parallel driver: one worker per active subregion, executing the
// same per-step schedule as the serial driver, with the exchange phases
// realized as transport messages (paper section 4).  Synchronization is
// indirect, exactly as in the paper: a worker blocks only when it has not
// yet received the boundary data its next compute phase needs, so
// neighbours drift apart by at most the stencil distance (appendix A).
// One template covers both dimensions; ParallelDriver2D/3D in
// parallel2d.hpp / parallel3d.hpp are thin compatibility shims over it.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/transport.hpp"
#include "src/runtime/domain_traits.hpp"
#include "src/runtime/sync_file.hpp"
#include "src/runtime/worker_stats.hpp"
#include "src/solver/schedule.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

template <int Dim>
class ParallelDriver {
 public:
  using Traits = DomainTraits<Dim>;
  using Mask = typename Traits::Mask;
  using Domain = typename Traits::Domain;
  using Decomp = typename Traits::Decomp;
  using LinkPlan = typename Traits::LinkPlan;
  using Field = typename Traits::Field;

  /// Decomposes `mask` into `grid` subregions and builds one Domain per
  /// active subregion.  If `transport` is null an InMemoryTransport is
  /// created internally.  `sched` picks the per-step phase ordering:
  /// kOverlap computes the boundary band first, posts the sends, computes
  /// the interior while the messages are in flight, and only then blocks
  /// on the receives; kLegacy is compute-everything-then-exchange.  Both
  /// orderings produce bitwise identical fields.  `threads` is the
  /// *intra-subregion* worker count: each subregion's kernels shard their
  /// rows across a per-domain pool, nested under the one-thread-per-
  /// subregion parallelism (0 = SUBSONIC_THREADS env or 1); bitwise
  /// neutral like the scheduling choice.
  ParallelDriver(const Mask& mask, const FluidParams& params, Method method,
                 const GridShape& grid,
                 std::shared_ptr<Transport> transport = nullptr,
                 Scheduling sched = Scheduling::kOverlap, int threads = 0);

  /// Runs `n` integration steps on every subregion, one thread each.
  void run(int n);

  /// Runs up to `max_steps` steps, stopping early — with every subregion
  /// at the *same* step — once `request` becomes true (appendix B: each
  /// worker announces its current step in the shared sync file; the agreed
  /// stop is max + 1, widened by the un-synchronization bound because our
  /// workers notice the request at step boundaries rather than in a signal
  /// handler).  Returns the number of steps executed.  After it returns,
  /// migration is save_checkpoint + restore_checkpoint on a new driver.
  int run_until_sync(int max_steps, const std::atomic<bool>& request,
                     SyncFile& sync_file);

  const Decomp& decomposition() const { return decomp_; }
  int active_count() const { return static_cast<int>(workers_.size()); }

  /// Accumulated timing of the worker owning `rank` (must be active).
  const WorkerStats& stats(int rank) const;

  /// The subdomain of decomposition rank `rank` (must be active).
  Domain& subdomain(int rank);
  const Domain& subdomain(int rank) const;
  bool is_active(int rank) const { return active_[rank]; }

  /// Assembles the global interior of a field from the subdomains.
  /// Inactive (all-solid) subregions contribute the quiescent state.
  Field gather(FieldId id) const;

  /// Call after editing subdomain fields: re-seeds LB equilibria and
  /// refreshes every ghost region (all fields).
  void reinitialize();

  /// Writes one dump file per active subregion into `dir`
  /// ("rank_<r>.dump"), in rank order — the paper's orderly one-after-
  /// the-other state saving (section 5.2).
  void save_checkpoint(const std::string& dir) const;

  /// Restores a checkpoint written by save_checkpoint for the same
  /// geometry, decomposition, method and parameters.  Resuming from here
  /// reproduces the uninterrupted run bit for bit — the paper's point
  /// that migration equals stop + save + restart.
  void restore_checkpoint(const std::string& dir);

  Transport& transport() { return *transport_; }

  /// Live telemetry for this driver: phase timers are always charged
  /// (they feed stats()); per-span trace events when SUBSONIC_TRACE is
  /// set.  The transport shares the registry for its own counters.
  telemetry::Session& telemetry() { return *telemetry_; }
  const telemetry::Session& telemetry() const { return *telemetry_; }

 private:
  struct Worker {
    int rank = -1;
    std::unique_ptr<Domain> domain;
    std::vector<LinkPlan> links;
    WorkerStats stats;
  };

  void post_sends(Worker& w, const std::vector<FieldId>& fields, long step,
                  int phase_index);
  void complete_recvs(Worker& w, const std::vector<FieldId>& fields,
                      long step, int phase_index);
  void exchange(Worker& w, const std::vector<FieldId>& fields, long step,
                int phase_index);
  /// Executes one integration step of `w`'s schedule, splitting each
  /// compute phase that feeds an exchange when the overlap scheduling is
  /// active, and charging compute/comm time to the worker's stats.
  void step_once(Worker& w);
  void worker_loop(Worker& w, int steps);

  Decomp decomp_;
  FluidParams params_;
  Method method_;
  int ghost_;
  std::vector<Phase> schedule_;
  std::vector<bool> active_;
  std::vector<int> worker_of_rank_;
  std::vector<Worker> workers_;
  std::shared_ptr<Transport> transport_;
  Scheduling sched_ = Scheduling::kOverlap;
  std::unique_ptr<telemetry::Session> telemetry_;
};

extern template class ParallelDriver<2>;
extern template class ParallelDriver<3>;

}  // namespace subsonic
