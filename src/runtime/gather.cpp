#include "src/runtime/gather.hpp"

#include <vector>

#include "src/io/checkpoint.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/domain_traits.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/util/check.hpp"

namespace subsonic {

namespace {

/// Shared implementation: restore each active rank's dump into a scratch
/// subdomain and copy its interior into global fields; inactive ranks
/// contribute the quiescent state.  Returns the fields in
/// Traits::macro_fields() order.
template <int Dim>
std::pair<long, std::vector<typename DomainTraits<Dim>::Field>> gather_impl(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const GridShape& grid, const std::string& workdir,
    long epoch) {
  using Traits = DomainTraits<Dim>;
  params.validate();
  const typename Traits::Decomp decomp =
      Traits::make_decomposition(mask, grid);
  const auto active_list = active_ranks(decomp, mask);
  const int ghost = required_ghost(method, params.filter_eps > 0.0);

  if (epoch >= 0) {
    // Only a MANIFEST-committed epoch is guaranteed to have a durable,
    // CRC-clean dump from every active rank; anything else may be torn.
    const auto m = epoch::read_manifest(workdir);
    SUBSONIC_REQUIRE_MSG(m && epoch <= m->epoch,
                         "gather_fields: epoch is not committed");
  }

  const std::vector<FieldId> ids = Traits::macro_fields();
  std::vector<typename Traits::Field> fields;
  fields.reserve(ids.size());
  for (FieldId id : ids) {
    fields.push_back(Traits::make_global_field(decomp));
    fields.back().fill(Traits::quiescent(id, params));
  }

  long step = -1;
  for (int rank : active_list) {
    typename Traits::Domain sub(mask, decomp.box(rank), params, method,
                                ghost);
    const std::string path =
        epoch >= 0 ? epoch::dump_path(workdir, rank, epoch)
                   : cohort::legacy_dump_path(workdir, rank);
    restore_domain(sub, path);
    if (step < 0) step = sub.step();
    SUBSONIC_REQUIRE_MSG(sub.step() == step,
                         "gather_fields: dumps disagree on the step counter");
    for (size_t i = 0; i < ids.size(); ++i)
      Traits::copy_interior(fields[i], sub, ids[i], decomp.box(rank));
  }
  return {step < 0 ? 0 : step, std::move(fields)};
}

/// Blocked counterpart: one scratch subdomain per active *block*, the
/// rest identical.  Dumps are owner-agnostic, so no owner map is needed.
template <int Dim>
std::pair<long, std::vector<typename DomainTraits<Dim>::Field>>
gather_blocked_impl(const typename DomainTraits<Dim>::Mask& mask,
                    const FluidParams& params, Method method,
                    const GridShape& grid, int block_side,
                    const std::string& workdir, long epoch) {
  using Traits = DomainTraits<Dim>;
  params.validate();
  const int ghost = required_ghost(method, params.filter_eps > 0.0);
  const int side =
      block_side > 0 ? block_side : block_side_from_env(kDefaultBlockSide);
  const typename Traits::BlockDecomp bd =
      Traits::make_block_decomposition(mask, grid, side, ghost);

  if (epoch >= 0) {
    const auto m = epoch::read_manifest(workdir);
    SUBSONIC_REQUIRE_MSG(m && epoch <= m->epoch,
                         "gather_fields_blocked: epoch is not committed");
  }

  const std::vector<FieldId> ids = Traits::macro_fields();
  std::vector<typename Traits::Field> fields;
  fields.reserve(ids.size());
  for (FieldId id : ids) {
    fields.push_back(Traits::make_global_field(bd.blocks()));
    fields.back().fill(Traits::quiescent(id, params));
  }

  long step = -1;
  for (int b = 0; b < bd.block_count(); ++b) {
    if (!bd.block_active(b)) continue;
    typename Traits::Domain sub(mask, bd.box(b), params, method, ghost);
    const std::string path = epoch >= 0
                                 ? epoch::block_dump_path(workdir, b, epoch)
                                 : cohort::legacy_block_dump_path(workdir, b);
    restore_domain(sub, path);
    if (step < 0) step = sub.step();
    SUBSONIC_REQUIRE_MSG(
        sub.step() == step,
        "gather_fields_blocked: dumps disagree on the step counter");
    for (size_t i = 0; i < ids.size(); ++i)
      Traits::copy_interior(fields[i], sub, ids[i], bd.box(b));
  }
  return {step < 0 ? 0 : step, std::move(fields)};
}

}  // namespace

GatheredFields2D gather_fields2d_blocked(const Mask2D& mask,
                                         const FluidParams& params,
                                         Method method, int jx, int jy,
                                         int block_side,
                                         const std::string& workdir,
                                         long epoch) {
  auto [step, fields] = gather_blocked_impl<2>(
      mask, params, method, GridShape{jx, jy, 1}, block_side, workdir, epoch);
  return GatheredFields2D{step, std::move(fields[0]), std::move(fields[1]),
                          std::move(fields[2])};
}

GatheredFields3D gather_fields3d_blocked(const Mask3D& mask,
                                         const FluidParams& params,
                                         Method method, int jx, int jy, int jz,
                                         int block_side,
                                         const std::string& workdir,
                                         long epoch) {
  auto [step, fields] =
      gather_blocked_impl<3>(mask, params, method, GridShape{jx, jy, jz},
                             block_side, workdir, epoch);
  return GatheredFields3D{step, std::move(fields[0]), std::move(fields[1]),
                          std::move(fields[2]), std::move(fields[3])};
}

GatheredFields2D gather_fields2d(const Mask2D& mask,
                                 const FluidParams& params, Method method,
                                 int jx, int jy, const std::string& workdir,
                                 long epoch) {
  auto [step, fields] = gather_impl<2>(mask, params, method,
                                       GridShape{jx, jy, 1}, workdir, epoch);
  return GatheredFields2D{step, std::move(fields[0]), std::move(fields[1]),
                          std::move(fields[2])};
}

GatheredFields3D gather_fields3d(const Mask3D& mask,
                                 const FluidParams& params, Method method,
                                 int jx, int jy, int jz,
                                 const std::string& workdir, long epoch) {
  auto [step, fields] = gather_impl<3>(
      mask, params, method, GridShape{jx, jy, jz}, workdir, epoch);
  return GatheredFields3D{step, std::move(fields[0]), std::move(fields[1]),
                          std::move(fields[2]), std::move(fields[3])};
}

}  // namespace subsonic
