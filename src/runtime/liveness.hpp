// Liveness layer for the supervised process runtime: heartbeats, a
// hung-rank watchdog, graceful escalation, and surgical per-rank restart.
//
// Every child inherits two pipes from the supervisor:
//
//   heartbeat pipe (child writes, supervisor reads) — the child emits a
//   fixed 32-byte beacon at every step boundary and, rate-limited, inside
//   every blocking transport wait.  32 <= PIPE_BUF, so writes are atomic
//   and the supervisor never sees a torn frame; the write end is
//   O_NONBLOCK so a stalled supervisor can only ever cost dropped
//   beacons, never a wedged child.
//
//   control pipe (supervisor writes, child reads) — carries 16-byte
//   rollback orders.  The supervisor writes the order *first*, then sends
//   SIGUSR1; the child's handler only raises a flag, so by the time the
//   child notices the flag the order is already sitting in the pipe and
//   the follow-up read cannot block.
//
// The watchdog declares a rank hung when it has been *silent* — no beacon
// of any phase — longer than an adaptive deadline:
//
//   deadline = max(floor, multiplier * EWMA(step time))
//
// A rank stuck in a long exchange still beacons (phase kWait), so waits
// are never mistaken for hangs; waits are already bounded separately by
// the transport's recv deadline.  What the watchdog catches is what no
// deadline inside the child can: livelocked compute, a SIGSTOP'd or
// swapped-out process, and total silence.
//
// Escalation is a two-step ladder: SIGTERM (the child's handler flushes
// its telemetry stream and exits with kTermAckExit), then SIGKILL after a
// grace window.  Recovery is *surgical*: only dead ranks are re-forked;
// survivors receive a rollback order and restore from the newest committed
// epoch in-process, which is bitwise identical to a fresh fork because the
// child rebuilds its Domain from scratch every round.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/summary.hpp"

namespace subsonic {

namespace telemetry {
class Session;
}

/// Watchdog / escalation policy, part of ProcessRunOptions.
struct LivenessOptions {
  /// Master switch: when false the heartbeat plumbing still runs (rounds
  /// and rollbacks need it) but silence never triggers an escalation.
  bool watchdog = true;
  /// Silence floor in ms; 0 = SUBSONIC_HEARTBEAT_MS env, else 5000.  The
  /// floor must cover child startup (fork + restore + connect), which
  /// emits no beacons between the initial kStart and the first wait.
  int heartbeat_floor_ms = 0;
  /// Deadline = max(floor, multiplier * EWMA step time) — a run whose
  /// steps take seconds gets a proportionally patient watchdog.
  double deadline_multiplier = 8.0;
  /// Minimum spacing of kWait beacons (and the transport's wait-slice).
  int beacon_interval_ms = 50;
  /// SIGTERM -> SIGKILL grace window in ms.
  int grace_ms = 2000;
  /// Heartbeat/control transport: 0 resolves SUBSONIC_LIVENESS_CHANNEL
  /// ("socket" switches, anything else keeps pipes), 1 forces sockets,
  /// -1 forces pipes.  Pipes are the single-host fast path; sockets are
  /// dialed back through the supervisor's rendezvous service, so they
  /// work for children that inherit no fds (and later, other hosts).
  /// Bitwise neutral to the physics either way.
  int socket_channels = 0;
};

namespace liveness {

/// Exit code of a child that took the SIGTERM escalation gracefully
/// (flushed telemetry, then exited).  Distinct from the runtime's 0-3 so
/// the supervisor can tell a put-down from a casualty.
constexpr int kTermAckExit = 4;

/// Resolves the silence floor: explicit option > SUBSONIC_HEARTBEAT_MS
/// env > 5000 ms default.
int resolve_floor_ms(const LivenessOptions& options);

/// Resolves LivenessOptions::socket_channels (see there).
bool resolve_socket_channels(const LivenessOptions& options);

/// "<base>.g<round>" — the per-round port registry.  Every recovery round
/// gets a fresh registry so a respawned rank can never connect to a dead
/// listener from the previous round.
std::string registry_for(const std::string& base, int round);

/// Removes every "ports*" file in `workdir` (start-of-run hygiene and
/// end-of-run cleanup for the per-round registries).
void remove_port_registries(const std::string& workdir);

enum class Phase : std::int32_t {
  kStart = 0,  ///< top of a round (spawn or rollback)
  kStep = 1,   ///< a step boundary was crossed
  kWait = 2,   ///< alive inside a blocking transport wait
};

struct Beacon {
  int rank = -1;
  Phase phase = Phase::kStart;
  std::int32_t round = 0;  ///< recovery round (supervisor generation)
  std::int64_t step = 0;
  std::int64_t mono_ns = 0;  ///< child's monotonic clock at emission
};

constexpr std::size_t kBeaconBytes = 32;
void encode_beacon(const Beacon& b, unsigned char out[kBeaconBytes]);
/// False when the frame is not a valid beacon (bad magic or phase).
bool decode_beacon(const unsigned char in[kBeaconBytes], Beacon* out);

/// A supervisor -> child rollback order: abort the current round, restore
/// `epoch` (or the legacy final dump when -1), rejoin as round `round`.
struct RollbackMsg {
  std::int32_t round = 0;
  std::int64_t epoch = -1;
};

constexpr std::size_t kRollbackBytes = 16;
void encode_rollback(const RollbackMsg& m, unsigned char out[kRollbackBytes]);
bool decode_rollback(const unsigned char in[kRollbackBytes], RollbackMsg* out);

/// Blocking-reads one rollback order from `fd`, then drains any newer
/// orders already queued (a second recovery can overtake a slow child)
/// and returns the newest.  The return value is the number of orders
/// consumed — the caller balances it against the SIGUSR1 count, since
/// the supervisor sends exactly one signal per order.  0 on EOF /
/// error — the supervisor died.
int read_rollback(int fd, RollbackMsg* out);

/// A compact cumulative telemetry digest a child pushes up the heartbeat
/// pipe at every periodic metrics flush: current totals (not deltas — a
/// dropped frame then costs staleness, never skew), plus the step-wall
/// histogram so the supervisor can quote live percentiles.  The wire
/// form is versioned, length-prefixed, and well under PIPE_BUF, so like
/// beacons it rides the O_NONBLOCK pipe atomically — never torn, worst
/// case dropped.
struct MetricsFrame {
  int rank = -1;
  std::int32_t round = 0;
  std::int64_t step = 0;      ///< last completed step
  std::int64_t mono_ns = 0;   ///< child's monotonic clock at emission
  double t_calc_s = 0;        ///< cumulative "compute." seconds
  double t_com_s = 0;         ///< cumulative "comm." seconds
  std::int64_t steps_done = 0;
  std::int64_t msgs_sent = 0;
  std::int64_t doubles_sent = 0;
  double comm_p50_s = 0;      ///< "comm.exchange" histogram percentiles
  double comm_p95_s = 0;
  double comm_p99_s = 0;
  double step_wall_sum_s = 0;
  std::int64_t step_wall_count = 0;
  std::uint32_t step_wall_buckets[telemetry::HistogramData::kBuckets] = {};
};

constexpr std::uint16_t kMetricsFrameVersion = 1;
constexpr std::size_t kMetricsFrameBytes = 272;  ///< v1 size, <= PIPE_BUF
void encode_metrics_frame(const MetricsFrame& m,
                          unsigned char out[kMetricsFrameBytes]);
/// False on bad magic, unknown version, or a length prefix that does not
/// match what the version promises.
bool decode_metrics_frame(const unsigned char* in, std::size_t len,
                          MetricsFrame* out);

long long mono_now_ns();

/// Child-side beacon writer.  Thread-safe: the main loop emits kStart /
/// kStep while the transport's sender thread pumps wait_tick().
class Emitter {
 public:
  Emitter() = default;
  Emitter(int fd, int rank, int interval_ms);

  /// False once muted or when no heartbeat fd was inherited.
  bool active() const { return fd_ >= 0 && !muted_.load(std::memory_order_relaxed); }

  void set_round(int round) { round_.store(round, std::memory_order_relaxed); }

  /// The mute fault: stop emitting forever (the process keeps running).
  void mute() { muted_.store(true, std::memory_order_relaxed); }

  /// Unconditional beacon (round start, step boundary).
  void emit(Phase phase, long step);

  /// Rate-limited kWait beacon carrying the last emitted step; called
  /// from inside every blocking transport wait.
  void wait_tick();

  /// Pushes a metrics digest up the same pipe (rank and round are filled
  /// in here).  Subject to the same mute fault and O_NONBLOCK drop
  /// semantics as beacons.
  void emit_metrics(MetricsFrame frame);

 private:
  void write_beacon(Phase phase, long step);

  int fd_ = -1;
  int rank_ = -1;
  long long interval_ns_ = 50 * 1000 * 1000LL;
  std::atomic<int> round_{0};
  std::atomic<bool> muted_{false};
  std::atomic<long> last_step_{0};
  std::atomic<long long> last_ns_{0};
};

/// Adaptive silence deadline: EWMA of observed step times, floored.
struct DeadlineModel {
  double floor_s = 5.0;
  double multiplier = 8.0;
  double ewma_step_s = 0;

  void observe_step(double dt_s);
  double deadline_s() const;
};

/// Supervisor-side heartbeat reader + watchdog state, one entry per live
/// child.  Feed it wall time explicitly so the deadline math is testable
/// without sleeping.
class Monitor {
 public:
  Monitor(double floor_s, double multiplier);

  /// Registers `rank`'s heartbeat read fd (set O_NONBLOCK by the caller).
  /// `round` seeds observed_round; `now_s` starts the silence clock.
  void attach(int rank, int fd, int round, double now_s);
  void detach(int rank);
  bool attached(int rank) const;

  /// Restarts the silence clock after a rollback order was sent: the
  /// survivor is about to spend floor-bounded time restoring, and the
  /// silence it accrued waiting on the dead rank must not count.
  void on_recovery_signal(int rank, int round, double now_s);

  /// Drains every heartbeat pipe and updates per-rank state.
  void poll(double now_s);

  /// Ranks that crossed their silence deadline since the last call; each
  /// rank is reported exactly once per attach/recovery cycle.
  std::vector<int> newly_hung(double now_s);

  /// Last step the rank reported (kStart resets it — rollbacks rewind).
  long last_step(int rank) const;
  /// Newest round seen in a beacon (or the attach/signal seed).
  int observed_round(int rank) const;
  double silence_s(int rank, double now_s) const;
  double deadline_s(int rank) const;
  /// Proof of life: has the rank beaconed at or after `t_s`?  Unattached
  /// ranks count as fresh (they are not the watchdog's problem).
  bool beaconed_since(int rank, double t_s) const;

  /// Latest metrics digest decoded off the rank's pipe; false when the
  /// rank never pushed one (or is detached).
  bool latest_frame(int rank, MetricsFrame* out) const;
  /// Invoked on every decoded metrics frame (live-view fan-out).  The
  /// sink runs on the supervision thread, inside poll().
  void set_frame_sink(std::function<void(const MetricsFrame&)> sink);

 private:
  struct State {
    int fd = -1;
    int round = -1;
    long step = -1;
    long long last_step_mono = -1;
    double last_beacon_s = 0;
    bool hung = false;
    bool has_frame = false;
    MetricsFrame frame;
    DeadlineModel model;
    std::string buf;  ///< partial-frame carry between polls
  };

  double floor_s_;
  double multiplier_;
  std::map<int, State> states_;
  std::function<void(const MetricsFrame&)> frame_sink_;
};

/// SIGTERM -> grace -> SIGKILL ladder for one child.
struct Escalation {
  enum class Action { kNone, kSigterm, kSigkill };

  double term_at_s = -1;
  bool killed = false;

  /// Next rung to execute, at most one SIGTERM and one SIGKILL ever.
  Action next(double now_s, double grace_s);
};

/// One rank the engine gave up on, handed to EngineHooks::fail.
struct EngineFailure {
  int rank = -1;
  int status = 0;  ///< waitpid status
  bool hung = false;
};

/// Runtime-specific callbacks the CohortEngine drives.  `spawn` forks the
/// child (closing `close_in_child` in the child branch before entering
/// child_main); the rest may be null.
struct EngineHooks {
  std::function<pid_t(int rank, int generation, long restore_epoch,
                      int heartbeat_fd, int control_fd,
                      const std::vector<int>& close_in_child)>
      spawn;
  /// Socket-channel mode: set when the heartbeat/control channels are
  /// dialed back by the child instead of inherited.  The engine then
  /// passes -1 fds to `spawn` and calls this right after, blocking until
  /// the child's channels arrive; returns {hb_read, ctl_write}, or
  /// {-1, -1} on timeout — the watchdog then treats the rank as silent
  /// and escalates normally.  Unset = pipe mode, bitwise the old path.
  std::function<std::pair<int, int>(int rank)> adopt_channels;
  /// Placement tag for liveness records and /status ("" when unset).
  std::function<std::string(int rank)> host_of;
  std::function<void()> poll_epochs;
  std::function<long()> committed_epoch;
  /// Called before each round's spawns/rollbacks with the round number
  /// and restore epoch: registry hygiene, divergence cleanup.
  std::function<void(int generation, long restore_epoch)> begin_generation;
  /// A child of this rank died mid-run (casualty or put-down): harvest
  /// its SIGTERM-flushed telemetry before a respawn overwrites it.
  /// `flushed` is true when the child acknowledged its put-down (exited
  /// kTermAckExit or cleanly) so its final telemetry dump is trustworthy;
  /// false for a SIGKILL / crash, where only the periodic flushes
  /// survive and the harvest should be tagged partial.
  std::function<void(int rank, bool flushed)> on_rank_down;
  /// Every metrics digest decoded off a heartbeat pipe (live view).
  std::function<void(const MetricsFrame&)> on_metrics_frame;
  /// Every liveness record as it is appended to the audit trail (live
  /// view; the record also lands in the records vector as before).
  std::function<void(const telemetry::LivenessRecord&)> on_liveness;
  /// Restart budget exhausted: every child has been reaped; must throw.
  std::function<void(const std::vector<EngineFailure>& failures)> fail;
};

/// The supervision loop shared by the plain and blocked supervisors:
/// spawn a cohort, pump heartbeats, reap, watchdog, escalate, and recover
/// surgically until every rank finished the current round cleanly.
class CohortEngine {
 public:
  CohortEngine(std::vector<int> ranks, const LivenessOptions& options,
               int max_restarts, EngineHooks hooks,
               telemetry::Session* supervisor,
               std::vector<telemetry::LivenessRecord>* records, int* restarts,
               int* forks);
  ~CohortEngine();

  CohortEngine(const CohortEngine&) = delete;
  CohortEngine& operator=(const CohortEngine&) = delete;

  /// Runs one cohort job to clean completion of every rank, starting at
  /// *generation and restoring `initial_restore_epoch` (-1 = legacy /
  /// fresh).  Recovery rounds advance *generation; on return it holds the
  /// next unused generation.  Throws whatever hooks.fail throws once a
  /// casualty lands with no restart budget left.
  void run(int* generation, long initial_restore_epoch);

 private:
  struct Child {
    int rank = -1;
    pid_t pid = -1;
    int hb_read = -1;
    int ctl_write = -1;
    bool reaped = true;
    bool done = false;
    bool casualty = false;
    bool escalating = false;
    bool put_down = false;
    int status = 0;
    int spawn_round = -1;
    Escalation esc;
  };

  double now_s() const;
  void record(const char* event, int rank, int generation, long step,
              double silence_s, double deadline_s, long epoch);
  void spawn_one(Child& c, int generation, long restore_epoch);
  void close_child_fds(Child& c);
  /// Tears the cohort down after a spawn failure mid-round: SIGKILL +
  /// blocking reap of every live child, so the SpawnError can propagate
  /// with no orphans left behind.
  void emergency_stop();
  [[noreturn]] void fail_all(int generation);

  std::vector<Child> children_;
  LivenessOptions options_;
  double floor_s_;
  double grace_s_;
  int max_restarts_;
  EngineHooks hooks_;
  telemetry::Session* supervisor_;
  std::vector<telemetry::LivenessRecord>* records_;
  int* restarts_;
  int* forks_;
  Monitor monitor_;
  std::chrono::steady_clock::time_point origin_;
  void (*old_sigpipe_)(int) = nullptr;
};

}  // namespace liveness

}  // namespace subsonic
