// Compatibility header: the 2D entry points of the supervised process
// runtime.  The implementation is the dimension-generic run_supervised
// template (supervisor.hpp), which also defines ProcessRunOptions,
// ProcessRunResult, RankFailure and ProcessRunError.
#pragma once

#include <string>

#include "src/geometry/mask.hpp"
#include "src/runtime/supervisor.hpp"

namespace subsonic {

/// Forks one child per active subregion of the (jx x jy) decomposition of
/// `mask`, runs `steps` integration steps with boundary exchange over real
/// TCP sockets, and writes "rank_<r>.dump" per subregion into `workdir`
/// (which must exist).  See run_supervised for the full contract.
ProcessRunResult run_multiprocess2d(const Mask2D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int steps,
                                    const std::string& workdir,
                                    const ProcessRunOptions& options);

/// Convenience overload with default supervision (kept for existing
/// callers): overlap scheduling, env-driven faults, default restart
/// budget, comm deadlines and heartbeat-watchdog policy.
ProcessRunResult run_multiprocess2d(const Mask2D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int steps,
                                    const std::string& workdir,
                                    Scheduling sched = Scheduling::kOverlap,
                                    int threads = 0);

}  // namespace subsonic
