// The fork()-based process runtime: each active subregion runs in a real
// UNIX process, exactly as in the paper — "the job-submit program ...
// begins a parallel subprocess on each workstation" — with TCP/IP sockets
// between the processes and the shared port-registry handshake.  On exit,
// every process leaves its state as a dump file in the working directory,
// where it can be inspected or resumed (the dump files double as the
// result-gathering mechanism for the parent).
#pragma once

#include <string>

#include "src/geometry/mask.hpp"
#include "src/solver/params.hpp"
#include "src/solver/pass.hpp"

namespace subsonic {

struct ProcessRunResult {
  int processes = 0;       ///< child processes forked (active subregions)
  long final_step = 0;     ///< step counter all subregions reached
};

/// Forks one child per active subregion of the (jx x jy) decomposition of
/// `mask`, runs `steps` integration steps with boundary exchange over real
/// TCP sockets, and writes "rank_<r>.dump" per subregion into `workdir`
/// (which must exist).  If matching dump files are already present they
/// are restored first, so repeated calls continue the run.  Throws if any
/// child fails.  `sched` picks the per-step ordering exactly as in
/// ParallelDriver2D: the overlap schedule posts each boundary band as soon
/// as it is computed and overlaps the interior with message flight.
/// `threads` is the intra-subregion worker count inside each child process
/// (0 = SUBSONIC_THREADS env or 1); bitwise neutral.
ProcessRunResult run_multiprocess2d(const Mask2D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int steps,
                                    const std::string& workdir,
                                    Scheduling sched = Scheduling::kOverlap,
                                    int threads = 0);

}  // namespace subsonic
