#include "src/runtime/block_set.hpp"

#include <chrono>

#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {

namespace {
/// Phase index of the full-state synchronization, shared with the
/// monolithic drivers so the tag layout stays uniform.
constexpr int kSyncPhase = 1023;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

template <int Dim>
BlockSet<Dim>::BlockSet(const Mask& mask, const FluidParams& params,
                        Method method, const BlockDecomp& bd, int rank,
                        int threads, telemetry::Session* tel)
    : bd_(bd),
      params_(params),
      method_(method),
      rank_(rank),
      ghost_(required_ghost(method, params.filter_eps > 0.0)),
      schedule_(Traits::make_schedule(method)),
      tel_(tel) {
  SUBSONIC_REQUIRE(tel_ != nullptr);
  SUBSONIC_REQUIRE(rank >= 0 && rank < bd_.rank_count());
  ids_ = bd_.blocks_of(rank);
  locals_.reserve(ids_.size());
  for (int b : ids_) {
    SUBSONIC_REQUIRE_MSG(
        !Traits::thinner_than_ghost(bd_.box(b), ghost_),
        "block thinner than the ghost width: its depth-g padding would "
        "need data from non-adjacent blocks");
    LocalBlock lb;
    lb.id = b;
    lb.domain = std::make_unique<Domain>(mask, bd_.box(b), params_, method_,
                                         ghost_, threads);
    lb.links = Traits::make_block_links(bd_, b, ghost_, params_);
    lb.compute_timer = "compute.block_" + std::to_string(b);
    locals_.push_back(std::move(lb));
  }
}

template <int Dim>
typename BlockSet<Dim>::Domain& BlockSet<Dim>::domain_of_block(int block) {
  for (LocalBlock& lb : locals_)
    if (lb.id == block) return *lb.domain;
  SUBSONIC_REQUIRE_MSG(false, "block is not owned by this rank");
  return *locals_.front().domain;  // unreachable
}

template <int Dim>
long BlockSet<Dim>::step() const {
  SUBSONIC_REQUIRE(!locals_.empty());
  const long s = locals_.front().domain->step();
  for (const LocalBlock& lb : locals_)
    SUBSONIC_CHECK(lb.domain->step() == s);
  return s;
}

template <int Dim>
void BlockSet<Dim>::post_sends(LocalBlock& b,
                               const std::vector<FieldId>& fields, long step,
                               int phase, const SendFn& send) {
  for (const LinkPlan& link : b.links) {
    const MessageTag tag = make_block_tag(step, phase, link.dir, b.id);
    auto payload = Traits::pack(*b.domain, fields, link.send_box);
    if (bd_.owner(link.peer) == rank_)
      mailbox_[tag] = std::move(payload);
    else
      send(bd_.owner(link.peer), tag, std::move(payload));
  }
}

template <int Dim>
void BlockSet<Dim>::complete_recvs(LocalBlock& b,
                                   const std::vector<FieldId>& fields,
                                   long step, int phase, const RecvFn& recv) {
  for (const LinkPlan& link : b.links) {
    // The tag exactly as the sending block composed it: its id, and this
    // link's direction as seen from its side.
    const MessageTag tag =
        make_block_tag(step, phase, link.peer_dir, link.peer);
    if (bd_.owner(link.peer) == rank_) {
      const auto it = mailbox_.find(tag);
      SUBSONIC_REQUIRE_MSG(it != mailbox_.end(),
                           "intra-rank block message missing: sends of a "
                           "phase must precede its receives");
      Traits::unpack(*b.domain, fields, link.recv_box, it->second);
      mailbox_.erase(it);
    } else {
      Traits::unpack(*b.domain, fields, link.recv_box,
                     recv(bd_.owner(link.peer), tag));
    }
  }
}

template <int Dim>
void BlockSet<Dim>::step_once(Scheduling sched, const SendFn& send,
                              const RecvFn& recv, int slow_permille) {
  SUBSONIC_REQUIRE(!locals_.empty());
  const long step = locals_.front().domain->step();

  // A compute pass over one block, charged to the block's own timer; the
  // injected slow-host spin runs *inside* the span so the per-block
  // T_calc the rebalancer consumes reflects the slowed rank faithfully.
  auto compute_block = [&](LocalBlock& b, ComputeKind kind,
                           ComputePass pass) {
    telemetry::ScopedSpan span(tel_, rank_, b.compute_timer.c_str(),
                               "compute", step);
    const auto t0 = std::chrono::steady_clock::now();
    Traits::run_compute(*b.domain, kind, pass);
    if (slow_permille > 0)
      spin_slow_penalty(seconds_since(t0), slow_permille);
    tel_->metrics().histogram(rank_, "compute.block").record(span.stop());
  };

  for (size_t i = 0; i < schedule_.size(); ++i) {
    const Phase& phase = schedule_[i];
    if (phase.kind == Phase::Kind::kCompute) {
      const bool split = sched == Scheduling::kOverlap &&
                         i + 1 < schedule_.size() &&
                         schedule_[i + 1].kind == Phase::Kind::kExchange;
      if (split) {
        const Phase& ex = schedule_[i + 1];
        const int ex_index = static_cast<int>(i + 1);
        for (LocalBlock& b : locals_)
          compute_block(b, phase.compute, ComputePass::kBand);
        {
          telemetry::ScopedSpan span(tel_, rank_, "comm.post_sends", "comm",
                                     step);
          for (LocalBlock& b : locals_)
            post_sends(b, ex.fields, step, ex_index, send);
        }
        for (LocalBlock& b : locals_)
          compute_block(b, phase.compute, ComputePass::kInterior);
        {
          telemetry::ScopedSpan span(tel_, rank_, "comm.complete_recvs",
                                     "comm", step);
          for (LocalBlock& b : locals_)
            complete_recvs(b, ex.fields, step, ex_index, recv);
        }
        ++i;  // the exchange phase was folded into the split
      } else {
        for (LocalBlock& b : locals_)
          compute_block(b, phase.compute, ComputePass::kFull);
      }
    } else {
      telemetry::ScopedSpan span(tel_, rank_, "comm.exchange", "comm", step);
      for (LocalBlock& b : locals_)
        post_sends(b, phase.fields, step, static_cast<int>(i), send);
      for (LocalBlock& b : locals_)
        complete_recvs(b, phase.fields, step, static_cast<int>(i), recv);
      tel_->metrics().histogram(rank_, "comm.exchange").record(span.stop());
    }
  }
  for (LocalBlock& b : locals_) b.domain->set_step(step + 1);
  tel_->metrics().counter(rank_, "steps").add();
}

template <int Dim>
void BlockSet<Dim>::sync_all_fields(long sync_step, const SendFn& send,
                                    const RecvFn& recv) {
  std::vector<FieldId> all_fields = Traits::macro_fields();
  if (method_ == Method::kLatticeBoltzmann && !locals_.empty()) {
    const int q = locals_.front().domain->q();
    for (int i = 0; i < q; ++i) all_fields.push_back(population(i));
  }
  for (LocalBlock& b : locals_)
    post_sends(b, all_fields, sync_step, kSyncPhase, send);
  for (LocalBlock& b : locals_)
    complete_recvs(b, all_fields, sync_step, kSyncPhase, recv);
}

template class BlockSet<2>;
template class BlockSet<3>;

}  // namespace subsonic
