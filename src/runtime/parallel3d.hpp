// Threaded 3D parallel driver; see parallel2d.hpp.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/transport.hpp"
#include "src/decomp/decomposition.hpp"
#include "src/runtime/exchange3d.hpp"
#include "src/runtime/sync_file.hpp"
#include "src/runtime/worker_stats.hpp"
#include "src/solver/schedule.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

class ParallelDriver3D {
 public:
  /// `threads` is the intra-subregion worker count, nested under the
  /// per-subregion threads; see ParallelDriver2D.
  ParallelDriver3D(const Mask3D& mask, const FluidParams& params,
                   Method method, int jx, int jy, int jz,
                   std::shared_ptr<Transport> transport = nullptr,
                   Scheduling sched = Scheduling::kOverlap,
                   int threads = 0);

  void run(int n);

  /// See ParallelDriver2D::run_until_sync (appendix B).
  int run_until_sync(int max_steps, const std::atomic<bool>& request,
                     SyncFile& sync_file);

  const Decomposition3D& decomposition() const { return decomp_; }
  int active_count() const { return static_cast<int>(workers_.size()); }

  /// Accumulated timing of the worker owning `rank` (must be active).
  const WorkerStats& stats(int rank) const;

  Domain3D& subdomain(int rank);
  const Domain3D& subdomain(int rank) const;
  bool is_active(int rank) const { return active_[rank]; }

  PaddedField3D<double> gather(FieldId id) const;

  void reinitialize();

  /// Per-subregion dump files; see ParallelDriver2D::save_checkpoint.
  void save_checkpoint(const std::string& dir) const;
  void restore_checkpoint(const std::string& dir);

  Transport& transport() { return *transport_; }

  /// Live telemetry; see ParallelDriver2D::telemetry().
  telemetry::Session& telemetry() { return *telemetry_; }
  const telemetry::Session& telemetry() const { return *telemetry_; }

 private:
  struct Worker {
    int rank = -1;
    std::unique_ptr<Domain3D> domain;
    std::vector<LinkPlan3D> links;
    WorkerStats stats;
  };

  void post_sends(Worker& w, const std::vector<FieldId>& fields, long step,
                  int phase_index);
  void complete_recvs(Worker& w, const std::vector<FieldId>& fields,
                      long step, int phase_index);
  void exchange(Worker& w, const std::vector<FieldId>& fields, long step,
                int phase_index);
  void step_once(Worker& w);
  void worker_loop(Worker& w, int steps);

  Decomposition3D decomp_;
  FluidParams params_;
  Method method_;
  int ghost_;
  std::vector<Phase> schedule_;
  std::vector<bool> active_;
  std::vector<int> worker_of_rank_;
  std::vector<Worker> workers_;
  std::shared_ptr<Transport> transport_;
  Scheduling sched_ = Scheduling::kOverlap;
  std::unique_ptr<telemetry::Session> telemetry_;
};

}  // namespace subsonic
