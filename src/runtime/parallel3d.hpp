// Compatibility header: ParallelDriver3D wraps the 3D instantiation of
// the dimension-generic ParallelDriver template (parallel_driver.hpp),
// keeping the historical (jx, jy, jz) constructor signature.
#pragma once

#include <memory>

#include "src/runtime/parallel_driver.hpp"

namespace subsonic {

class ParallelDriver3D : public ParallelDriver<3> {
 public:
  ParallelDriver3D(const Mask3D& mask, const FluidParams& params,
                   Method method, int jx, int jy, int jz,
                   std::shared_ptr<Transport> transport = nullptr,
                   Scheduling sched = Scheduling::kOverlap, int threads = 0)
      : ParallelDriver<3>(mask, params, method, GridShape{jx, jy, jz},
                          std::move(transport), sched, threads) {}
};

}  // namespace subsonic
