// Small helpers shared by the monolithic (supervisor.cpp) and
// over-decomposed (blocked_supervisor.cpp) supervisor translation units.
#pragma once

#include <sys/wait.h>

#include <cctype>
#include <cstdlib>
#include <string>

namespace subsonic {
namespace supervisor_detail {

inline std::string describe_status(int status) {
  if (WIFEXITED(status))
    return "exited " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

/// Parses "<prefix><digits><suffix>" and returns the id, or -1 when
/// `name` has a different shape.
inline int parse_id_file(const std::string& name, const std::string& prefix,
                         const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return -1;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  for (char c : digits)
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
  return std::atoi(digits.c_str());
}

}  // namespace supervisor_detail
}  // namespace subsonic
