// Small helpers shared by the monolithic (supervisor.cpp) and
// over-decomposed (blocked_supervisor.cpp) supervisor translation units.
#pragma once

#include <sys/wait.h>

#include <cctype>
#include <cstdlib>
#include <string>

namespace subsonic {
namespace supervisor_detail {

inline std::string describe_status(int status) {
  if (WIFEXITED(status))
    return "exited " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

/// Resolves ProcessRunOptions::metrics_flush_interval: an explicit
/// positive option wins, negative disables, 0 follows the
/// SUBSONIC_METRICS_FLUSH environment variable (default 16; a
/// non-positive env value disables).  Returns the steps between periodic
/// publications, 0 = off.
inline int resolve_metrics_flush_interval(int option) {
  if (option > 0) return option;
  if (option < 0) return 0;
  const char* env = std::getenv("SUBSONIC_METRICS_FLUSH");
  if (!env || !*env) return 16;
  const int v = std::atoi(env);
  return v > 0 ? v : 0;
}

/// Resolves ProcessRunOptions::status_port into a bindable port: > 0 is
/// that port, 0 means "bind an ephemeral port", and -1 means "endpoint
/// off".  Option semantics: > 0 explicit, -1 force off, -2 force
/// ephemeral, 0 = SUBSONIC_STATUS_PORT env ("auto" = ephemeral,
/// unset/empty/non-positive = off).
inline int resolve_status_port(int option) {
  if (option > 0) return option;
  if (option == -1) return -1;
  if (option == -2) return 0;
  const char* env = std::getenv("SUBSONIC_STATUS_PORT");
  if (!env || !*env) return -1;
  if (std::string(env) == "auto") return 0;
  const int v = std::atoi(env);
  return v > 0 ? v : -1;
}

/// Parses "<prefix><digits><suffix>" and returns the id, or -1 when
/// `name` has a different shape.
inline int parse_id_file(const std::string& name, const std::string& prefix,
                         const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return -1;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  for (char c : digits)
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
  return std::atoi(digits.c_str());
}

}  // namespace supervisor_detail
}  // namespace subsonic
