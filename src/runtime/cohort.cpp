#include "src/runtime/cohort.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "src/comm/rendezvous.hpp"
#include "src/comm/tcp_endpoint.hpp"
#include "src/io/atomic_file.hpp"
#include "src/io/checkpoint.hpp"
#include "src/runtime/block_set.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/runtime/liveness.hpp"
#include "src/telemetry/summary.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/log.hpp"

namespace subsonic {
namespace cohort {

std::string metrics_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".metrics.jsonl";
}

std::string rank_trace_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".trace.json";
}

std::string legacy_dump_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".dump";
}

std::string legacy_block_dump_path(const std::string& workdir, int block) {
  return workdir + "/block_" + std::to_string(block) + ".dump";
}

void tag_child_stderr(int fd, int rank) {
  std::string pending;
  char buf[512];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      std::fprintf(stderr, "[rank %d] %.*s\n", rank, static_cast<int>(pos),
                   pending.data());
      pending.erase(0, pos + 1);
    }
  }
  if (!pending.empty())
    std::fprintf(stderr, "[rank %d] %s\n", rank, pending.c_str());
  ::close(fd);
}

void flush_dump(const PendingDump& p, const ChildConfig& cfg,
                const std::string& workdir, const FaultPlan& faults) {
  const std::string path = epoch::dump_path(workdir, cfg.rank, p.epoch);
  if (faults.torn_dump(cfg.rank, p.epoch, cfg.generation)) {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(p.bytes.data(),
               static_cast<std::streamsize>(p.bytes.size() / 2));
    torn.flush();
    ::raise(SIGKILL);
  }
  atomic_write_file(path, p.bytes.data(), p.bytes.size());
}

void flush_block_dump(const PendingBlockDump& p, const ChildConfig& cfg,
                      const std::string& workdir, const FaultPlan& faults) {
  const std::string path = epoch::block_dump_path(workdir, p.block, p.epoch);
  if (faults.torn_dump(cfg.rank, p.epoch, cfg.generation)) {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(p.bytes.data(),
               static_cast<std::streamsize>(p.bytes.size() / 2));
    torn.flush();
    ::raise(SIGKILL);
  }
  atomic_write_file(path, p.bytes.data(), p.bytes.size());
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- child-side liveness state -------------------------------------------

/// SIGUSR1 announces a rollback order, but the order frame itself
/// travels on the control pipe and can arrive before OR after the
/// signal (write() and kill() are not synchronised).  A plain boolean
/// flag races: a child parked on the pipe can consume the order, start
/// the recovery round, and only then receive the late SIGUSR1 — the
/// stale flag would abandon the fresh round into a wait for an order
/// that never comes.  So the handler counts signals and the main loop
/// counts consumed orders (the supervisor sends exactly one signal per
/// order); a rollback is pending only while signals lead orders.
/// Atomics, not sig_atomic_t: the transport's sender thread polls this
/// from abort_requested.
std::atomic<int> g_rollback_sig{0};
std::atomic<int> g_rollback_ack{0};

bool rollback_pending() {
  // Strictly greater: a child parked on the pipe can consume an order
  // before its signal lands, putting acks transiently AHEAD of signals —
  // that is a retired rollback, not a pending one.
  return g_rollback_sig.load(std::memory_order_relaxed) >
         g_rollback_ack.load(std::memory_order_relaxed);
}

void handle_sigusr1(int) {
  g_rollback_sig.fetch_add(1, std::memory_order_relaxed);
}

/// SIGTERM rescue state: the handler flushes the telemetry stream so the
/// supervisor can harvest the work this rank did before being put down.
/// Deliberately not async-signal-safe — the process is about to die
/// either way (SIGKILL follows after the grace window), so the flush is
/// best-effort, never a correctness path.
telemetry::Session* g_term_session = nullptr;
std::string g_term_metrics_path;
std::string g_term_trace_path;  // empty: tracing off

void handle_sigterm(int) {
  if (g_term_session) {
    try {
      if (!g_term_metrics_path.empty())
        g_term_session->write_metrics_jsonl(g_term_metrics_path);
      if (!g_term_trace_path.empty())
        g_term_session->write_trace_json(g_term_trace_path);
    } catch (...) {
    }
  }
  ::_exit(liveness::kTermAckExit);
}

void install_child_signal_handlers() {
  struct sigaction term = {};
  term.sa_handler = handle_sigterm;
  sigemptyset(&term.sa_mask);
  ::sigaction(SIGTERM, &term, nullptr);
  struct sigaction usr = {};
  usr.sa_handler = handle_sigusr1;
  sigemptyset(&usr.sa_mask);
  usr.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR1, &usr, nullptr);
}

/// The hang fault: go completely silent and burn CPU forever — a
/// livelock the watchdog must catch.  hard=1 first ignores SIGTERM so
/// the supervisor's graceful rung falls through to SIGKILL.  Ignoring
/// (process-wide disposition), not sigprocmask (per-thread): the
/// endpoint's sender thread would otherwise take the process-directed
/// SIGTERM and defeat the fault.
[[noreturn]] void enter_hang(bool hard) {
  if (hard) ::signal(SIGTERM, SIG_IGN);
  for (;;) {
    volatile unsigned sink = 0;
    for (int i = 0; i < (1 << 16); ++i) sink = sink + static_cast<unsigned>(i);
  }
}

/// Reads the supervisor's rollback order (round + restore epoch) after a
/// round was abandoned.  The wait is sliced so the parked child keeps
/// beaconing — the supervisor's proof-of-life gate will not commit a
/// recovery (and so will not send the order) until every survivor has
/// beaconed after the casualty, so a silently parked child would
/// deadlock the recovery into its own hang detection.  Each consumed
/// order retires one expected SIGUSR1, keeping rollback_pending() false
/// for signals whose orders this child has already acted on.  False:
/// the control channel is gone — the supervisor died and the child has
/// nothing left to rejoin.
bool await_rollback_order(const ChildConfig& cfg, liveness::Emitter& hb,
                          int* round, long* restore_epoch) {
  if (cfg.control_fd < 0) return false;
  for (;;) {
    hb.wait_tick();
    pollfd p{cfg.control_fd, POLLIN, 0};
    const int n = ::poll(&p, 1, std::max(1, cfg.beacon_interval_ms));
    if (n > 0) break;
    if (n < 0 && errno != EINTR) return false;
  }
  liveness::RollbackMsg msg;
  const int consumed = liveness::read_rollback(cfg.control_fd, &msg);
  if (consumed == 0) return false;
  g_rollback_ack.fetch_add(consumed, std::memory_order_relaxed);
  *round = msg.round;
  *restore_epoch = msg.epoch;
  return true;
}

/// Periodic in-flight publication: append the delta records accrued since
/// the last flush to the rank's metrics stream, then push a cumulative
/// digest frame up the heartbeat pipe so the supervisor's live view stays
/// current without touching the filesystem.  Both halves are best-effort
/// and observationally inert to the physics.
void publish_metrics(telemetry::Session* tel, liveness::Emitter& hb, int rank,
                     const std::string& path, long done) {
  tel->flush_metrics_delta(path);
  if (!hb.active()) return;
  const telemetry::RankMetrics rm =
      telemetry::collect_rank(tel->metrics(), rank);
  liveness::MetricsFrame mf;
  mf.step = done;
  mf.t_calc_s = rm.t_calc();
  mf.t_com_s = rm.t_com();
  mf.steps_done = rm.counter_or("steps");
  mf.msgs_sent = rm.counter_or("transport.msgs_sent");
  mf.doubles_sent = rm.counter_or("transport.doubles_sent");
  const auto ce = rm.histograms.find("comm.exchange");
  if (ce != rm.histograms.end()) {
    mf.comm_p50_s = ce->second.quantile_s(0.50);
    mf.comm_p95_s = ce->second.quantile_s(0.95);
    mf.comm_p99_s = ce->second.quantile_s(0.99);
  }
  const auto sw = rm.histograms.find("step.wall");
  if (sw != rm.histograms.end()) {
    mf.step_wall_sum_s = sw->second.sum_s;
    mf.step_wall_count = sw->second.count;
    for (std::size_t i = 0; i < telemetry::HistogramData::kBuckets; ++i)
      mf.step_wall_buckets[i] = static_cast<std::uint32_t>(std::min<long long>(
          sw->second.buckets[i], 0xffffffffLL));
  }
  hb.emit_metrics(mf);
}

/// An exec-launched child cannot inherit pipe fds across hosts; instead
/// the supervisor hands it a rendezvous endpoint and the child dials its
/// heartbeat and control channels back.  The dialed sockets drop into the
/// same ChildConfig slots the pipe fds would occupy, so everything
/// downstream (Emitter, rollback polling) is transport-blind.  A no-op
/// when the endpoint is empty or the fds were inherited (fork launcher).
ChildConfig connect_socket_channels(const ChildConfig& in) {
  ChildConfig cfg = in;
  if (cfg.channel_endpoint.empty() ||
      (cfg.heartbeat_fd >= 0 && cfg.control_fd >= 0))
    return cfg;
  rendezvous::Endpoint ep;
  if (!rendezvous::parse_registry(cfg.channel_endpoint, &ep))
    throw std::runtime_error("bad channel endpoint: " + cfg.channel_endpoint);
  if (cfg.heartbeat_fd < 0) {
    const int fd =
        rendezvous::Client::connect_channel(ep.host, ep.port, "HB", cfg.rank);
    if (fd >= 0) {
      // Beacons must never block the physics loop: the supervisor-side
      // reader can stall without stalling the step (pipes got O_NONBLOCK
      // from the supervisor; a dialed socket sets it here).
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      cfg.heartbeat_fd = fd;
    } else {
      // The Emitter no-ops on fd -1 and the watchdog escalates the
      // silence; log so the silent rank is diagnosable from stderr.
      std::fprintf(stderr, "subprocess rank %d: HB channel dial to %s:%d failed\n",
                   cfg.rank, ep.host.c_str(), ep.port);
    }
  }
  if (cfg.control_fd < 0) {
    const int fd =
        rendezvous::Client::connect_channel(ep.host, ep.port, "CTL", cfg.rank);
    if (fd >= 0)
      cfg.control_fd = fd;
    else
      std::fprintf(stderr, "subprocess rank %d: CTL channel dial to %s:%d failed\n",
                   cfg.rank, ep.host.c_str(), ep.port);
  }
  return cfg;
}

}  // namespace

template <int Dim>
[[noreturn]] void child_main(const typename DomainTraits<Dim>::Mask& mask,
                             const FluidParams& params, Method method,
                             const typename DomainTraits<Dim>::Decomp& decomp,
                             const std::vector<bool>& active,
                             const ChildConfig& cfg_in,
                             const std::string& workdir,
                             const std::string& registry,
                             const FaultPlan& faults) {
  using Traits = DomainTraits<Dim>;
  using LinkPlan = typename Traits::LinkPlan;
  const ChildConfig cfg = connect_socket_channels(cfg_in);
  try {
    telemetry::SessionConfig tel_cfg;
    tel_cfg.trace = cfg.trace;
    tel_cfg.origin_ns = cfg.origin_ns;
    telemetry::Session session(tel_cfg);
    telemetry::Session* const tel = &session;
    set_log_context(cfg.rank);

    g_term_session = tel;
    g_term_metrics_path = metrics_path(workdir, cfg.rank);
    if (session.tracing()) g_term_trace_path = rank_trace_path(workdir, cfg.rank);
    install_child_signal_handlers();

    liveness::Emitter hb(cfg.heartbeat_fd, cfg.rank, cfg.beacon_interval_ms);

    const int ghost = required_ghost(method, params.filter_eps > 0.0);
    const std::string legacy_dump = legacy_dump_path(workdir, cfg.rank);

    // One recovery round: build the domain from scratch, restore, connect
    // under the round's registry, run to target.  Returns false when a
    // rollback order interrupted it.  A fresh Domain every round is what
    // makes an in-process rollback bitwise identical to being re-forked.
    auto run_round = [&](int round, long restore_epoch) -> bool {
      ChildConfig rcfg = cfg;
      rcfg.generation = round;
      rcfg.restore_epoch = restore_epoch;

      typename Traits::Domain domain(mask, decomp.box(rcfg.rank), params,
                                     method, ghost, rcfg.threads);
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.restore", "ckpt");
        if (rcfg.restore_epoch >= 0) {
          restore_domain(
              domain, epoch::dump_path(workdir, rcfg.rank, rcfg.restore_epoch));
        } else {
          std::ifstream probe(legacy_dump, std::ios::binary);
          if (probe.good()) restore_domain(domain, legacy_dump);
        }
      }

      const int delay_ms = faults.delay_connect_ms(rcfg.rank, round);
      if (delay_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));

      // Slow-host fault: every compute phase is stretched by a busy-spin
      // proportional to its measured duration, inside the phase's telemetry
      // span — indistinguishable from a genuinely slow CPU downstream.
      const int slow_pm = faults.slow_permille(rcfg.rank, round);
      auto run_compute_timed = [&](auto& dom, ComputeKind kind,
                                   ComputePass pass) {
        const auto t0 = std::chrono::steady_clock::now();
        Traits::run_compute(dom, kind, pass);
        if (slow_pm > 0) spin_slow_penalty(seconds_since(t0), slow_pm);
      };

      TcpEndpointOptions ep_options;
      ep_options.recv_deadline_ms = rcfg.recv_deadline_ms;
      ep_options.metrics = session.metrics_ptr();
      if (rcfg.heartbeat_fd >= 0 || rcfg.control_fd >= 0) {
        ep_options.wait_beacon = [&hb] { hb.wait_tick(); };
        ep_options.abort_requested = [] { return rollback_pending(); };
        ep_options.wait_slice_ms = std::max(1, rcfg.beacon_interval_ms);
      }
      TcpEndpoint endpoint(rcfg.rank, decomp.rank_count(),
                           liveness::registry_for(registry, round),
                           ep_options);
      const auto links =
          Traits::make_links(decomp, rcfg.rank, ghost, params, active);
      const auto schedule = Traits::make_schedule(method);

      auto post_sends = [&](const std::vector<FieldId>& fields, long step,
                            int phase) {
        for (const LinkPlan& link : links)
          endpoint.send(link.peer, make_tag(step, phase, link.dir),
                        Traits::pack(domain, fields, link.send_box));
      };
      auto complete_recvs = [&](const std::vector<FieldId>& fields, long step,
                                int phase) {
        for (const LinkPlan& link : links)
          Traits::unpack(domain, fields, link.recv_box,
                         endpoint.recv(link.peer,
                                       make_tag(step, phase, link.peer_dir)));
      };
      auto exchange = [&](const std::vector<FieldId>& fields, long step,
                          int phase) {
        post_sends(fields, step, phase);
        complete_recvs(fields, step, phase);
      };

      // Initial full sync seeds the ghost regions (same as the threaded
      // runtime's reinitialize step).  The tag carries the restore step, so
      // a respawned cohort handshakes consistently regardless of epoch.
      std::vector<FieldId> all_fields = Traits::macro_fields();
      for (int i = 0; i < domain.q(); ++i) all_fields.push_back(population(i));
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "comm.sync", "comm",
                                   domain.step());
        exchange(all_fields, domain.step(), 1023);
      }

      std::vector<PendingDump> pending;
      while (domain.step() < rcfg.target_step) {
        if (rollback_pending()) return false;
        const long step = domain.step();
        set_log_context(rcfg.rank, step);
        const auto step_t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < schedule.size(); ++i) {
          const Phase& phase = schedule[i];
          if (phase.kind == Phase::Kind::kCompute) {
            const bool split = rcfg.sched == Scheduling::kOverlap &&
                               i + 1 < schedule.size() &&
                               schedule[i + 1].kind == Phase::Kind::kExchange;
            if (split) {
              const Phase& ex = schedule[i + 1];
              const int ex_index = static_cast<int>(i + 1);
              {
                telemetry::ScopedSpan span(
                    tel, rcfg.rank,
                    compute_phase_name(phase.compute, ComputePass::kBand),
                    "compute", step);
                run_compute_timed(domain, phase.compute, ComputePass::kBand);
              }
              {
                telemetry::ScopedSpan span(tel, rcfg.rank, "comm.post_sends",
                                           "comm", step);
                post_sends(ex.fields, step, ex_index);
              }
              {
                telemetry::ScopedSpan span(
                    tel, rcfg.rank,
                    compute_phase_name(phase.compute, ComputePass::kInterior),
                    "compute", step);
                run_compute_timed(domain, phase.compute,
                                  ComputePass::kInterior);
              }
              {
                // The receive-completion wait is the exposed comm latency of
                // an overlapped exchange; feed it to the same histogram the
                // legacy path records so percentiles exist either way.
                telemetry::ScopedSpan span(tel, rcfg.rank,
                                           "comm.complete_recvs", "comm",
                                           step);
                complete_recvs(ex.fields, step, ex_index);
                tel->metrics()
                    .histogram(rcfg.rank, "comm.exchange")
                    .record(span.stop());
              }
              ++i;
            } else {
              telemetry::ScopedSpan span(tel, rcfg.rank,
                                         compute_phase_name(phase.compute),
                                         "compute", step);
              run_compute_timed(domain, phase.compute, ComputePass::kFull);
            }
          } else {
            telemetry::ScopedSpan span(tel, rcfg.rank, "comm.exchange",
                                       "comm", step);
            exchange(phase.fields, step, static_cast<int>(i));
            tel->metrics()
                .histogram(rcfg.rank, "comm.exchange")
                .record(span.stop());
          }
        }
        domain.set_step(step + 1);
        tel->metrics().counter(rcfg.rank, "steps").add();
        tel->metrics()
            .histogram(rcfg.rank, "step.wall")
            .record(seconds_since(step_t0));
        const long done = domain.step();
        hb.emit(liveness::Phase::kStep, done);

        // Publish before the fault checks fire: a rank killed at this very
        // step still leaves its flushed prefix for the harvest.
        if (rcfg.metrics_flush_interval > 0 &&
            (done - rcfg.start_step) % rcfg.metrics_flush_interval == 0)
          publish_metrics(tel, hb, rcfg.rank,
                          metrics_path(workdir, cfg.rank), done);

        // A kill fault fires before this step's checkpoint work, so the
        // crash always loses whatever the stagger had not yet flushed.
        if (auto ks = faults.kill_step(rcfg.rank, round))
          if (done - rcfg.start_step >= *ks) ::raise(SIGKILL);
        if (auto hg = faults.hang_at(rcfg.rank, round))
          if (done - rcfg.start_step >= hg->step) enter_hang(hg->hard);
        if (auto ms = faults.mute_step(rcfg.rank, round))
          if (done - rcfg.start_step >= *ms) hb.mute();

        if (rcfg.checkpoint_interval > 0 &&
            (done - rcfg.start_step) % rcfg.checkpoint_interval == 0 &&
            done < rcfg.target_step) {
          telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.capture", "ckpt",
                                     done);
          PendingDump p;
          p.epoch = (done - rcfg.start_step) / rcfg.checkpoint_interval - 1;
          p.flush_step = done + rcfg.stagger_index;
          p.bytes = serialize_domain(domain);
          pending.push_back(std::move(p));
        }
        for (size_t i = 0; i < pending.size();) {
          if (done >= pending[i].flush_step) {
            telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.flush", "ckpt",
                                       done);
            flush_dump(pending[i], rcfg, workdir, faults);
            pending.erase(pending.begin() + static_cast<long>(i));
          } else {
            ++i;
          }
        }
      }
      set_log_context(rcfg.rank);
      for (const PendingDump& p : pending) {
        telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.flush", "ckpt",
                                   domain.step());
        flush_dump(p, rcfg, workdir, faults);
      }

      // Drain the async send queue before _exit: a peer may still be
      // waiting on our final-step messages.
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "comm.flush", "comm",
                                   domain.step());
        endpoint.flush();
      }
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.final_save", "ckpt",
                                   domain.step());
        save_domain(domain, legacy_dump);
      }
      return true;
    };

    int round = cfg.generation;
    long restore_epoch = cfg.restore_epoch;
    for (;;) {
      hb.set_round(round);
      hb.emit(liveness::Phase::kStart, cfg.start_step);
      bool completed = false;
      try {
        completed = run_round(round, restore_epoch);
      } catch (const endpoint_aborted&) {
        completed = false;  // rollback order arrived mid-wait
      } catch (const peer_lost_error& e) {
        // A neighbour died under us.  Supervised, the watchdog is about
        // to order a rollback, so park on the control pipe instead of
        // exiting — this rank survives the recovery in-process.
        if (cfg.control_fd < 0) throw;
        std::fprintf(stderr,
                     "subprocess rank %d lost a peer (awaiting rollback): "
                     "%s\n",
                     cfg.rank, e.what());
        completed = false;
      }
      if (completed) break;
      if (!await_rollback_order(cfg, hb, &round, &restore_epoch)) ::_exit(1);
    }

    // The telemetry streams are this rank's half of the supervisor's
    // run_summary.json; written last so they cover the whole run, and only
    // on a clean (or SIGTERM-rescued) exit — a SIGKILLed rank contributes
    // nothing until the supervisor harvests a survivor's flush.
    session.write_metrics_jsonl(metrics_path(workdir, cfg.rank));
    if (session.tracing())
      session.write_trace_json(rank_trace_path(workdir, cfg.rank));
    ::_exit(0);
  } catch (const peer_lost_error& e) {
    // Expected when a neighbour dies: report and exit so the supervisor
    // can restart the cohort.  Never hang.
    std::fprintf(stderr, "subprocess rank %d lost a peer: %s\n", cfg.rank,
                 e.what());
    ::_exit(3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subprocess rank %d failed: %s\n", cfg.rank,
                 e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(2);
  }
}

template <int Dim>
[[noreturn]] void child_main_blocked(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const typename DomainTraits<Dim>::BlockDecomp& bd,
    const ChildConfig& cfg_in, const std::string& workdir,
    const std::string& registry, const FaultPlan& faults) {
  const ChildConfig cfg = connect_socket_channels(cfg_in);
  try {
    telemetry::SessionConfig tel_cfg;
    tel_cfg.trace = cfg.trace;
    tel_cfg.origin_ns = cfg.origin_ns;
    telemetry::Session session(tel_cfg);
    telemetry::Session* const tel = &session;
    set_log_context(cfg.rank);

    g_term_session = tel;
    g_term_metrics_path = metrics_path(workdir, cfg.rank);
    if (session.tracing()) g_term_trace_path = rank_trace_path(workdir, cfg.rank);
    install_child_signal_handlers();

    liveness::Emitter hb(cfg.heartbeat_fd, cfg.rank, cfg.beacon_interval_ms);

    auto run_round = [&](int round, long restore_epoch) -> bool {
      ChildConfig rcfg = cfg;
      rcfg.generation = round;
      rcfg.restore_epoch = restore_epoch;

      BlockSet<Dim> set(mask, params, method, bd, rcfg.rank, rcfg.threads,
                        tel);
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.restore", "ckpt");
        for (int b : set.block_ids()) {
          auto& dom = set.domain_of_block(b);
          if (rcfg.restore_epoch >= 0) {
            restore_domain(
                dom, epoch::block_dump_path(workdir, b, rcfg.restore_epoch));
          } else {
            const std::string legacy = legacy_block_dump_path(workdir, b);
            std::ifstream probe(legacy, std::ios::binary);
            if (probe.good()) restore_domain(dom, legacy);
          }
        }
      }

      const int delay_ms = faults.delay_connect_ms(rcfg.rank, round);
      if (delay_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));

      const int slow_pm = faults.slow_permille(rcfg.rank, round);

      TcpEndpointOptions ep_options;
      ep_options.recv_deadline_ms = rcfg.recv_deadline_ms;
      ep_options.metrics = session.metrics_ptr();
      if (rcfg.heartbeat_fd >= 0 || rcfg.control_fd >= 0) {
        ep_options.wait_beacon = [&hb] { hb.wait_tick(); };
        ep_options.abort_requested = [] { return rollback_pending(); };
        ep_options.wait_slice_ms = std::max(1, rcfg.beacon_interval_ms);
      }
      TcpEndpoint endpoint(rcfg.rank, bd.rank_count(),
                           liveness::registry_for(registry, round),
                           ep_options);
      auto send = [&](int dst, MessageTag tag, std::vector<double> payload) {
        endpoint.send(dst, tag, std::move(payload));
      };
      auto recv = [&](int src, MessageTag tag) {
        return endpoint.recv(src, tag);
      };

      // Initial full sync seeds every block's ghost regions; the tag
      // carries the restore step, so a respawned cohort handshakes
      // consistently.
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "comm.sync", "comm",
                                   set.step());
        set.sync_all_fields(set.step(), send, recv);
      }

      std::vector<PendingBlockDump> pending;
      while (set.step() < rcfg.target_step) {
        if (rollback_pending()) return false;
        set_log_context(rcfg.rank, set.step());
        const auto step_t0 = std::chrono::steady_clock::now();
        set.step_once(rcfg.sched, send, recv, slow_pm);
        tel->metrics()
            .histogram(rcfg.rank, "step.wall")
            .record(seconds_since(step_t0));
        const long done = set.step();
        hb.emit(liveness::Phase::kStep, done);

        if (rcfg.metrics_flush_interval > 0 &&
            (done - rcfg.start_step) % rcfg.metrics_flush_interval == 0)
          publish_metrics(tel, hb, rcfg.rank,
                          metrics_path(workdir, cfg.rank), done);

        if (auto ks = faults.kill_step(rcfg.rank, round))
          if (done - rcfg.start_step >= *ks) ::raise(SIGKILL);
        if (auto hg = faults.hang_at(rcfg.rank, round))
          if (done - rcfg.start_step >= hg->step) enter_hang(hg->hard);
        if (auto ms = faults.mute_step(rcfg.rank, round))
          if (done - rcfg.start_step >= *ms) hb.mute();

        // Capture up to the run's end, segment boundaries included (the
        // boundary dump flushes in the exit path below) — a gap in the
        // epoch numbering would stall the supervisor's sequential commits.
        const long run_end = std::max(rcfg.final_target, rcfg.target_step);
        if (rcfg.checkpoint_interval > 0 &&
            (done - rcfg.start_step) % rcfg.checkpoint_interval == 0 &&
            done < run_end) {
          telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.capture", "ckpt",
                                     done);
          const long epoch_id =
              (done - rcfg.start_step) / rcfg.checkpoint_interval - 1;
          for (int i = 0; i < set.local_count(); ++i) {
            PendingBlockDump p;
            p.block = set.block_ids()[i];
            p.epoch = epoch_id;
            p.flush_step = done + rcfg.stagger_index;
            p.bytes = serialize_domain(set.domain(i));
            pending.push_back(std::move(p));
          }
        }
        for (size_t i = 0; i < pending.size();) {
          if (done >= pending[i].flush_step) {
            telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.flush", "ckpt",
                                       done);
            flush_block_dump(pending[i], rcfg, workdir, faults);
            pending.erase(pending.begin() + static_cast<long>(i));
          } else {
            ++i;
          }
        }
      }
      set_log_context(rcfg.rank);
      for (const PendingBlockDump& p : pending) {
        telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.flush", "ckpt",
                                   set.step());
        flush_block_dump(p, rcfg, workdir, faults);
      }

      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "comm.flush", "comm",
                                   set.step());
        endpoint.flush();
      }
      {
        telemetry::ScopedSpan span(tel, rcfg.rank, "ckpt.final_save", "ckpt",
                                   set.step());
        for (int i = 0; i < set.local_count(); ++i)
          save_domain(set.domain(i),
                      legacy_block_dump_path(workdir, set.block_ids()[i]));
      }
      return true;
    };

    int round = cfg.generation;
    long restore_epoch = cfg.restore_epoch;
    for (;;) {
      hb.set_round(round);
      hb.emit(liveness::Phase::kStart, cfg.start_step);
      bool completed = false;
      try {
        completed = run_round(round, restore_epoch);
      } catch (const endpoint_aborted&) {
        completed = false;
      } catch (const peer_lost_error& e) {
        if (cfg.control_fd < 0) throw;  // unsupervised: exit 3 as before
        std::fprintf(stderr,
                     "subprocess rank %d lost a peer (awaiting rollback): "
                     "%s\n",
                     cfg.rank, e.what());
        completed = false;
      }
      if (completed) break;
      if (!await_rollback_order(cfg, hb, &round, &restore_epoch)) ::_exit(1);
    }

    session.write_metrics_jsonl(metrics_path(workdir, cfg.rank));
    if (session.tracing())
      session.write_trace_json(rank_trace_path(workdir, cfg.rank));
    ::_exit(0);
  } catch (const peer_lost_error& e) {
    std::fprintf(stderr, "subprocess rank %d lost a peer: %s\n", cfg.rank,
                 e.what());
    ::_exit(3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subprocess rank %d failed: %s\n", cfg.rank,
                 e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(2);
  }
}

template void child_main<2>(const Mask2D&, const FluidParams&, Method,
                            const Decomposition2D&, const std::vector<bool>&,
                            const ChildConfig&, const std::string&,
                            const std::string&, const FaultPlan&);
template void child_main<3>(const Mask3D&, const FluidParams&, Method,
                            const Decomposition3D&, const std::vector<bool>&,
                            const ChildConfig&, const std::string&,
                            const std::string&, const FaultPlan&);
template void child_main_blocked<2>(const Mask2D&, const FluidParams&, Method,
                                    const BlockDecomposition2D&,
                                    const ChildConfig&, const std::string&,
                                    const std::string&, const FaultPlan&);
template void child_main_blocked<3>(const Mask3D&, const FluidParams&, Method,
                                    const BlockDecomposition3D&,
                                    const ChildConfig&, const std::string&,
                                    const std::string&, const FaultPlan&);

}  // namespace cohort
}  // namespace subsonic
