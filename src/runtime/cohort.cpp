#include "src/runtime/cohort.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "src/comm/tcp_endpoint.hpp"
#include "src/io/atomic_file.hpp"
#include "src/io/checkpoint.hpp"
#include "src/runtime/block_set.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/log.hpp"

namespace subsonic {
namespace cohort {

std::string metrics_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".metrics.jsonl";
}

std::string rank_trace_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".trace.json";
}

std::string legacy_dump_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".dump";
}

std::string legacy_block_dump_path(const std::string& workdir, int block) {
  return workdir + "/block_" + std::to_string(block) + ".dump";
}

void tag_child_stderr(int fd, int rank) {
  std::string pending;
  char buf[512];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      std::fprintf(stderr, "[rank %d] %.*s\n", rank, static_cast<int>(pos),
                   pending.data());
      pending.erase(0, pos + 1);
    }
  }
  if (!pending.empty())
    std::fprintf(stderr, "[rank %d] %s\n", rank, pending.c_str());
  ::close(fd);
}

void flush_dump(const PendingDump& p, const ChildConfig& cfg,
                const std::string& workdir, const FaultPlan& faults) {
  const std::string path = epoch::dump_path(workdir, cfg.rank, p.epoch);
  if (faults.torn_dump(cfg.rank, p.epoch, cfg.generation)) {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(p.bytes.data(),
               static_cast<std::streamsize>(p.bytes.size() / 2));
    torn.flush();
    ::raise(SIGKILL);
  }
  atomic_write_file(path, p.bytes.data(), p.bytes.size());
}

void flush_block_dump(const PendingBlockDump& p, const ChildConfig& cfg,
                      const std::string& workdir, const FaultPlan& faults) {
  const std::string path = epoch::block_dump_path(workdir, p.block, p.epoch);
  if (faults.torn_dump(cfg.rank, p.epoch, cfg.generation)) {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(p.bytes.data(),
               static_cast<std::streamsize>(p.bytes.size() / 2));
    torn.flush();
    ::raise(SIGKILL);
  }
  atomic_write_file(path, p.bytes.data(), p.bytes.size());
}

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

template <int Dim>
[[noreturn]] void child_main(const typename DomainTraits<Dim>::Mask& mask,
                             const FluidParams& params, Method method,
                             const typename DomainTraits<Dim>::Decomp& decomp,
                             const std::vector<bool>& active,
                             const ChildConfig& cfg,
                             const std::string& workdir,
                             const std::string& registry,
                             const FaultPlan& faults) {
  using Traits = DomainTraits<Dim>;
  using LinkPlan = typename Traits::LinkPlan;
  try {
    telemetry::SessionConfig tel_cfg;
    tel_cfg.trace = cfg.trace;
    tel_cfg.origin_ns = cfg.origin_ns;
    telemetry::Session session(tel_cfg);
    telemetry::Session* const tel = &session;
    set_log_context(cfg.rank);

    const int ghost = required_ghost(method, params.filter_eps > 0.0);
    typename Traits::Domain domain(mask, decomp.box(cfg.rank), params,
                                   method, ghost, cfg.threads);
    const std::string legacy_dump = legacy_dump_path(workdir, cfg.rank);
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.restore", "ckpt");
      if (cfg.restore_epoch >= 0) {
        restore_domain(domain,
                       epoch::dump_path(workdir, cfg.rank, cfg.restore_epoch));
      } else {
        std::ifstream probe(legacy_dump, std::ios::binary);
        if (probe.good()) restore_domain(domain, legacy_dump);
      }
    }

    const int delay_ms = faults.delay_connect_ms(cfg.rank, cfg.generation);
    if (delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));

    // Slow-host fault: every compute phase is stretched by a busy-spin
    // proportional to its measured duration, inside the phase's telemetry
    // span — indistinguishable from a genuinely slow CPU downstream.
    const int slow_pm = faults.slow_permille(cfg.rank, cfg.generation);
    auto run_compute_timed = [&](auto& dom, ComputeKind kind,
                                 ComputePass pass) {
      const auto t0 = std::chrono::steady_clock::now();
      Traits::run_compute(dom, kind, pass);
      if (slow_pm > 0) spin_slow_penalty(seconds_since(t0), slow_pm);
    };

    TcpEndpointOptions ep_options;
    ep_options.recv_deadline_ms = cfg.recv_deadline_ms;
    ep_options.metrics = session.metrics_ptr();
    TcpEndpoint endpoint(cfg.rank, decomp.rank_count(), registry,
                         ep_options);
    const auto links =
        Traits::make_links(decomp, cfg.rank, ghost, params, active);
    const auto schedule = Traits::make_schedule(method);

    auto post_sends = [&](const std::vector<FieldId>& fields, long step,
                          int phase) {
      for (const LinkPlan& link : links)
        endpoint.send(link.peer, make_tag(step, phase, link.dir),
                      Traits::pack(domain, fields, link.send_box));
    };
    auto complete_recvs = [&](const std::vector<FieldId>& fields, long step,
                              int phase) {
      for (const LinkPlan& link : links)
        Traits::unpack(domain, fields, link.recv_box,
                       endpoint.recv(link.peer,
                                     make_tag(step, phase, link.peer_dir)));
    };
    auto exchange = [&](const std::vector<FieldId>& fields, long step,
                        int phase) {
      post_sends(fields, step, phase);
      complete_recvs(fields, step, phase);
    };

    // Initial full sync seeds the ghost regions (same as the threaded
    // runtime's reinitialize step).  The tag carries the restore step, so
    // a respawned cohort handshakes consistently regardless of epoch.
    std::vector<FieldId> all_fields = Traits::macro_fields();
    for (int i = 0; i < domain.q(); ++i) all_fields.push_back(population(i));
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "comm.sync", "comm",
                                 domain.step());
      exchange(all_fields, domain.step(), 1023);
    }

    std::vector<PendingDump> pending;
    while (domain.step() < cfg.target_step) {
      const long step = domain.step();
      set_log_context(cfg.rank, step);
      for (size_t i = 0; i < schedule.size(); ++i) {
        const Phase& phase = schedule[i];
        if (phase.kind == Phase::Kind::kCompute) {
          const bool split = cfg.sched == Scheduling::kOverlap &&
                             i + 1 < schedule.size() &&
                             schedule[i + 1].kind == Phase::Kind::kExchange;
          if (split) {
            const Phase& ex = schedule[i + 1];
            const int ex_index = static_cast<int>(i + 1);
            {
              telemetry::ScopedSpan span(
                  tel, cfg.rank,
                  compute_phase_name(phase.compute, ComputePass::kBand),
                  "compute", step);
              run_compute_timed(domain, phase.compute, ComputePass::kBand);
            }
            {
              telemetry::ScopedSpan span(tel, cfg.rank, "comm.post_sends",
                                         "comm", step);
              post_sends(ex.fields, step, ex_index);
            }
            {
              telemetry::ScopedSpan span(
                  tel, cfg.rank,
                  compute_phase_name(phase.compute, ComputePass::kInterior),
                  "compute", step);
              run_compute_timed(domain, phase.compute,
                                ComputePass::kInterior);
            }
            {
              telemetry::ScopedSpan span(tel, cfg.rank, "comm.complete_recvs",
                                         "comm", step);
              complete_recvs(ex.fields, step, ex_index);
            }
            ++i;
          } else {
            telemetry::ScopedSpan span(tel, cfg.rank,
                                       compute_phase_name(phase.compute),
                                       "compute", step);
            run_compute_timed(domain, phase.compute, ComputePass::kFull);
          }
        } else {
          telemetry::ScopedSpan span(tel, cfg.rank, "comm.exchange", "comm",
                                     step);
          exchange(phase.fields, step, static_cast<int>(i));
        }
      }
      domain.set_step(step + 1);
      tel->metrics().counter(cfg.rank, "steps").add();
      const long done = domain.step();

      // A kill fault fires before this step's checkpoint work, so the
      // crash always loses whatever the stagger had not yet flushed.
      if (auto ks = faults.kill_step(cfg.rank, cfg.generation))
        if (done - cfg.start_step >= *ks) ::raise(SIGKILL);

      if (cfg.checkpoint_interval > 0 &&
          (done - cfg.start_step) % cfg.checkpoint_interval == 0 &&
          done < cfg.target_step) {
        telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.capture", "ckpt",
                                   done);
        PendingDump p;
        p.epoch = (done - cfg.start_step) / cfg.checkpoint_interval - 1;
        p.flush_step = done + cfg.stagger_index;
        p.bytes = serialize_domain(domain);
        pending.push_back(std::move(p));
      }
      for (size_t i = 0; i < pending.size();) {
        if (done >= pending[i].flush_step) {
          telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.flush", "ckpt",
                                     done);
          flush_dump(pending[i], cfg, workdir, faults);
          pending.erase(pending.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }
    set_log_context(cfg.rank);
    for (const PendingDump& p : pending) {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.flush", "ckpt",
                                 domain.step());
      flush_dump(p, cfg, workdir, faults);
    }

    // Drain the async send queue before _exit: a peer may still be
    // waiting on our final-step messages.
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "comm.flush", "comm",
                                 domain.step());
      endpoint.flush();
    }
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.final_save", "ckpt",
                                 domain.step());
      save_domain(domain, legacy_dump);
    }

    // The telemetry streams are this rank's half of the supervisor's
    // run_summary.json; written last so they cover the whole run, and only
    // on a clean exit (a killed rank contributes nothing — the respawned
    // generation rewrites the file).
    session.write_metrics_jsonl(metrics_path(workdir, cfg.rank));
    if (session.tracing())
      session.write_trace_json(rank_trace_path(workdir, cfg.rank));
    ::_exit(0);
  } catch (const peer_lost_error& e) {
    // Expected when a neighbour dies: report and exit so the supervisor
    // can restart the cohort.  Never hang.
    std::fprintf(stderr, "subprocess rank %d lost a peer: %s\n", cfg.rank,
                 e.what());
    ::_exit(3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subprocess rank %d failed: %s\n", cfg.rank,
                 e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(2);
  }
}

template <int Dim>
[[noreturn]] void child_main_blocked(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const typename DomainTraits<Dim>::BlockDecomp& bd,
    const ChildConfig& cfg, const std::string& workdir,
    const std::string& registry, const FaultPlan& faults) {
  try {
    telemetry::SessionConfig tel_cfg;
    tel_cfg.trace = cfg.trace;
    tel_cfg.origin_ns = cfg.origin_ns;
    telemetry::Session session(tel_cfg);
    telemetry::Session* const tel = &session;
    set_log_context(cfg.rank);

    BlockSet<Dim> set(mask, params, method, bd, cfg.rank, cfg.threads, tel);
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.restore", "ckpt");
      for (int b : set.block_ids()) {
        auto& dom = set.domain_of_block(b);
        if (cfg.restore_epoch >= 0) {
          restore_domain(
              dom, epoch::block_dump_path(workdir, b, cfg.restore_epoch));
        } else {
          const std::string legacy = legacy_block_dump_path(workdir, b);
          std::ifstream probe(legacy, std::ios::binary);
          if (probe.good()) restore_domain(dom, legacy);
        }
      }
    }

    const int delay_ms = faults.delay_connect_ms(cfg.rank, cfg.generation);
    if (delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));

    const int slow_pm = faults.slow_permille(cfg.rank, cfg.generation);

    TcpEndpointOptions ep_options;
    ep_options.recv_deadline_ms = cfg.recv_deadline_ms;
    ep_options.metrics = session.metrics_ptr();
    TcpEndpoint endpoint(cfg.rank, bd.rank_count(), registry, ep_options);
    auto send = [&](int dst, MessageTag tag, std::vector<double> payload) {
      endpoint.send(dst, tag, std::move(payload));
    };
    auto recv = [&](int src, MessageTag tag) {
      return endpoint.recv(src, tag);
    };

    // Initial full sync seeds every block's ghost regions; the tag carries
    // the restore step, so a respawned cohort handshakes consistently.
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "comm.sync", "comm",
                                 set.step());
      set.sync_all_fields(set.step(), send, recv);
    }

    std::vector<PendingBlockDump> pending;
    while (set.step() < cfg.target_step) {
      set_log_context(cfg.rank, set.step());
      set.step_once(cfg.sched, send, recv, slow_pm);
      const long done = set.step();

      if (auto ks = faults.kill_step(cfg.rank, cfg.generation))
        if (done - cfg.start_step >= *ks) ::raise(SIGKILL);

      // Capture up to the run's end, segment boundaries included (the
      // boundary dump flushes in the exit path below) — a gap in the
      // epoch numbering would stall the supervisor's sequential commits.
      const long run_end = std::max(cfg.final_target, cfg.target_step);
      if (cfg.checkpoint_interval > 0 &&
          (done - cfg.start_step) % cfg.checkpoint_interval == 0 &&
          done < run_end) {
        telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.capture", "ckpt",
                                   done);
        const long epoch_id =
            (done - cfg.start_step) / cfg.checkpoint_interval - 1;
        for (int i = 0; i < set.local_count(); ++i) {
          PendingBlockDump p;
          p.block = set.block_ids()[i];
          p.epoch = epoch_id;
          p.flush_step = done + cfg.stagger_index;
          p.bytes = serialize_domain(set.domain(i));
          pending.push_back(std::move(p));
        }
      }
      for (size_t i = 0; i < pending.size();) {
        if (done >= pending[i].flush_step) {
          telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.flush", "ckpt",
                                     done);
          flush_block_dump(pending[i], cfg, workdir, faults);
          pending.erase(pending.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }
    set_log_context(cfg.rank);
    for (const PendingBlockDump& p : pending) {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.flush", "ckpt",
                                 set.step());
      flush_block_dump(p, cfg, workdir, faults);
    }

    {
      telemetry::ScopedSpan span(tel, cfg.rank, "comm.flush", "comm",
                                 set.step());
      endpoint.flush();
    }
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.final_save", "ckpt",
                                 set.step());
      for (int i = 0; i < set.local_count(); ++i)
        save_domain(set.domain(i),
                    legacy_block_dump_path(workdir, set.block_ids()[i]));
    }

    session.write_metrics_jsonl(metrics_path(workdir, cfg.rank));
    if (session.tracing())
      session.write_trace_json(rank_trace_path(workdir, cfg.rank));
    ::_exit(0);
  } catch (const peer_lost_error& e) {
    std::fprintf(stderr, "subprocess rank %d lost a peer: %s\n", cfg.rank,
                 e.what());
    ::_exit(3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subprocess rank %d failed: %s\n", cfg.rank,
                 e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(2);
  }
}

template void child_main<2>(const Mask2D&, const FluidParams&, Method,
                            const Decomposition2D&, const std::vector<bool>&,
                            const ChildConfig&, const std::string&,
                            const std::string&, const FaultPlan&);
template void child_main<3>(const Mask3D&, const FluidParams&, Method,
                            const Decomposition3D&, const std::vector<bool>&,
                            const ChildConfig&, const std::string&,
                            const std::string&, const FaultPlan&);
template void child_main_blocked<2>(const Mask2D&, const FluidParams&, Method,
                                    const BlockDecomposition2D&,
                                    const ChildConfig&, const std::string&,
                                    const std::string&, const FaultPlan&);
template void child_main_blocked<3>(const Mask3D&, const FluidParams&, Method,
                                    const BlockDecomposition3D&,
                                    const ChildConfig&, const std::string&,
                                    const std::string&, const FaultPlan&);

}  // namespace cohort
}  // namespace subsonic
