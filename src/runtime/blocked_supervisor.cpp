// run_supervised_blocked<Dim>: the over-decomposed half of the process
// runtime (supervisor.hpp documents the contract).  Structure mirrors
// run_supervised, with two deltas: checkpoints and final dumps are
// per-*block* (owner-agnostic, so a restart works under any owner map),
// and when rebalancing is enabled the run proceeds in segments of
// rebalance_interval steps — at each segment boundary every child has
// exited cleanly at the same step with its blocks' state on disk, the
// supervisor folds the segment's per-block compute timers into a
// rebalance decision, and the next segment's cohort starts under the
// (possibly rewritten) owner map.  Epoch ordering stays sound across
// segments because children number epochs from the run's global start
// step, and a mid-segment crash restores the newest committed epoch
// exactly as in the monolithic runtime.
#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "src/comm/http_status.hpp"
#include "src/io/checkpoint.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/cohort_lifecycle.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/runtime/launcher.hpp"
#include "src/runtime/rebalancer.hpp"
#include "src/runtime/status_board.hpp"
#include "src/runtime/supervisor.hpp"
#include "src/runtime/supervisor_util.hpp"
#include "src/telemetry/summary.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {

namespace {

using supervisor_detail::describe_status;
using supervisor_detail::parse_id_file;

/// Start-of-run hygiene for a blocked run: every rank telemetry stream
/// goes (the aggregation below must only see this run's streams), every
/// monolithic rank_<r>.dump goes (a blocked run can never restore one),
/// and every block_<b>.dump that cannot belong to this run's block
/// geometry goes.  Matching block dumps are kept — they are what makes
/// repeated calls continue a run.
template <int Dim>
void clean_stale_blocked_artifacts(
    const std::string& workdir,
    const typename DomainTraits<Dim>::BlockDecomp& bd, Method method,
    int ghost) {
  using Traits = DomainTraits<Dim>;
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(workdir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) names.push_back(entry->d_name);
    ::closedir(dir);
  }
  for (const std::string& name : names) {
    if (name.find(".epoch_") != std::string::npos) continue;  // cleared already
    // ".trace.json" by substring: harvested partial traces of put-down
    // ranks carry a ".g<round>" infix (rank_0.g1.trace.json).
    if (parse_id_file(name, "rank_", ".metrics.jsonl") >= 0 ||
        name.find(".trace.json") != std::string::npos ||
        parse_id_file(name, "rank_", ".dump") >= 0) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    const int block = parse_id_file(name, "block_", ".dump");
    if (block < 0) continue;
    if (block >= bd.block_count() || !bd.block_active(block)) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    try {
      const CheckpointInfo info = inspect_checkpoint(workdir + "/" + name);
      if (!Traits::box_matches(info, bd.box(block)) ||
          info.method != static_cast<int>(method) || info.ghost != ghost)
        std::remove((workdir + "/" + name).c_str());
    } catch (const std::exception&) {
      // Unreadable or torn: keep it and let the restore report it.
    }
  }
}

}  // namespace

template <int Dim>
ProcessRunResult run_supervised_blocked(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const GridShape& grid, int steps,
    const std::string& workdir, const ProcessRunOptions& options) {
  using Traits = DomainTraits<Dim>;
  params.validate();
  SUBSONIC_REQUIRE(steps >= 1);
  SUBSONIC_REQUIRE(options.checkpoint_interval >= 0);
  SUBSONIC_REQUIRE(options.max_restarts >= 0);
  SUBSONIC_REQUIRE(options.recv_deadline_ms >= 0);
  SUBSONIC_REQUIRE(options.rebalance_interval >= 0);
  SUBSONIC_REQUIRE(options.rebalance_threshold >= 1.0);

  const int ghost = required_ghost(method, params.filter_eps > 0.0);
  const int side = options.block_side > 0
                       ? options.block_side
                       : block_side_from_env(kDefaultBlockSide);
  typename Traits::BlockDecomp bd =
      Traits::make_block_decomposition(mask, grid, side, ghost);

  const FaultPlan faults = options.faults.empty()
                               ? FaultPlan::from_env()
                               : FaultPlan::parse(options.faults);

  // Fresh run-control state per run (see supervisor.cpp): stale registry
  // files and status.port from a crashed prior run are removed; live port
  // registration goes through the rendezvous service, not the filesystem.
  cohort::Lifecycle::clean_run_control_files(workdir);
  epoch::clear_run_state(workdir);
  clean_stale_blocked_artifacts<Dim>(workdir, bd, method, ghost);
  std::remove((workdir + "/trace.json").c_str());
  std::remove((workdir + "/run_summary.json").c_str());
  std::remove((workdir + "/supervisor.metrics.jsonl").c_str());

  const bool trace_on =
      options.trace > 0 ||
      (options.trace < 0 && telemetry::trace_enabled_from_env());
  telemetry::SessionConfig sup_cfg;
  sup_cfg.trace = trace_on;
  telemetry::Session supervisor(sup_cfg);

  std::vector<int> active_blocks;
  for (int b = 0; b < bd.block_count(); ++b)
    if (bd.block_active(b)) active_blocks.push_back(b);

  // Continuation runs resume from the legacy per-block dumps.
  long start_step = 0;
  if (!active_blocks.empty()) {
    try {
      start_step = inspect_checkpoint(cohort::legacy_block_dump_path(
                                          workdir, active_blocks[0]))
                       .step;
    } catch (const std::exception&) {
      start_step = 0;  // absent or unreadable: fresh run
    }
  }
  const long target_step = start_step + steps;

  ProcessRunResult result;
  result.blocks = bd.block_count();
  result.final_step = target_step;
  result.block_owner = bd.owner_map();
  if (active_blocks.empty()) return result;

  int generation = 0;        // counts every spawned cohort
  long committed_epoch = -1;

  const int flush_interval = supervisor_detail::resolve_metrics_flush_interval(
      options.metrics_flush_interval);

  // Cohort lifecycle (see supervisor.cpp): launcher, rendezvous service,
  // stderr tagging, harvests, failure reports — shared across segments.
  cohort::Lifecycle::Setup lcs;
  lcs.workdir = workdir;
  lcs.trace_on = trace_on;
  lcs.dim = Dim;
  lcs.blocked = true;
  lcs.launcher = options.launcher;
  lcs.faults_spec = options.faults;
  lcs.faults = &faults;
  lcs.liveness = &options.liveness;
  cohort::Lifecycle lc(std::move(lcs));

  // Live introspection plane (see supervisor.cpp): board + endpoint, off
  // unless a status port was requested.
  std::unique_ptr<liveness::StatusBoard> board;
  std::unique_ptr<HttpStatusServer> http;
  const int want_port =
      supervisor_detail::resolve_status_port(options.status_port);
  if (want_port >= 0) {
    board = std::make_unique<liveness::StatusBoard>();
    liveness::StatusBoard::Config bc;
    bc.workdir = workdir;
    bc.ranks = bd.active_ranks();
    for (int rank : bc.ranks) {
      double fluid = 0;
      for (int b : bd.blocks_of(rank))
        fluid += static_cast<double>(
            mask.count_box(bd.box(b), NodeType::kFluid));
      bc.fluid_cells.push_back(fluid);
    }
    bc.start_step = start_step;
    bc.target_step = target_step;
    bc.dims = Dim;
    bc.blocks = bd.block_count();
    bc.supervisor = &supervisor;
    bc.hosts.assign(bc.ranks.size(), lc.host_tag());
    bc.launcher = lc.launcher_name();
    board->configure(std::move(bc));
    lc.set_board(board.get());
    board->set_owner_map(bd.owner_map());
    http = std::make_unique<HttpStatusServer>(
        want_port, [b = board.get()](const std::string& path,
                                     std::string* body, std::string* ct) {
          return b->handle(path, body, ct);
        });
    std::ofstream pf(workdir + "/status.port", std::ios::trunc);
    pf << http->port() << "\n";
  }

  auto poll_epochs = [&]() {
    if (options.checkpoint_interval <= 0) return;
    for (;;) {
      const long e = committed_epoch + 1;
      long step = -1;
      bool complete = true;
      for (int b : active_blocks) {
        try {
          const CheckpointInfo info =
              inspect_checkpoint(epoch::block_dump_path(workdir, b, e));
          if (step < 0) step = info.step;
          complete = complete && info.step == step;
        } catch (const std::exception&) {
          complete = false;
        }
        if (!complete) break;
      }
      if (!complete) return;
      epoch::Manifest m;
      m.epoch = e;
      m.step = step;
      m.ranks = active_blocks;  // block ids: the blocked runtime's unit
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.commit", "ckpt",
                                   step);
        epoch::commit_manifest(workdir, m);
      }
      committed_epoch = e;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.gc", "ckpt", step);
        epoch::gc_block_epochs(workdir, active_blocks, e);
      }
    }
  };

  // Whole-run telemetry lives in lc.harvested(): mid-segment rank deaths
  // are harvested there by the lifecycle, and each segment's clean totals
  // are folded in below (children rewrite their streams every cohort).

  // The ranks of the *last* segment, for the final aggregation below.
  std::vector<int> active_list = bd.active_ranks();
  result.processes = static_cast<int>(active_list.size());

  long cur_step = start_step;
  while (cur_step < target_step) {
    const long seg_target =
        options.rebalance_interval > 0
            ? std::min(target_step, cur_step + options.rebalance_interval)
            : target_step;
    active_list = bd.active_ranks();
    result.processes = static_cast<int>(active_list.size());

    // Exec children rebuild the segment's world from the spec file, so it
    // must carry the owner map in force *this* segment (rebalances rewrite
    // it between segments).
    if (lc.wants_spec()) {
      cohort::CohortSpec cs;
      cs.set_mask(mask);
      cs.method = method;
      cs.blocked = true;
      cs.block_side = side;
      cs.grid = grid;
      cs.params = params;
      cs.owner = bd.owner_map();
      lc.write_spec(cs);
    }

    auto spawn_child = [&](int rank, int gen, long restore_epoch, int hb_fd,
                           int ctl_fd,
                           const std::vector<int>& close_in_child) -> pid_t {
      size_t stagger = 0;
      for (size_t i = 0; i < active_list.size(); ++i)
        if (active_list[i] == rank) stagger = i;
      cohort::ChildConfig cfg;
      cfg.rank = rank;
      cfg.generation = gen;
      cfg.target_step = seg_target;
      cfg.start_step = start_step;
      cfg.final_target = target_step;
      cfg.restore_epoch = restore_epoch;
      cfg.checkpoint_interval = options.checkpoint_interval;
      cfg.stagger_index = static_cast<int>(stagger);
      cfg.recv_deadline_ms = options.recv_deadline_ms;
      cfg.sched = options.sched;
      cfg.threads = options.threads;
      cfg.trace = trace_on;
      cfg.origin_ns = supervisor.origin_ns();
      cfg.heartbeat_fd = hb_fd;
      cfg.control_fd = ctl_fd;
      cfg.beacon_interval_ms = options.liveness.beacon_interval_ms;
      cfg.metrics_flush_interval = flush_interval;
      return lc.spawn(rank, std::move(cfg), close_in_child,
                      [&](const cohort::ChildConfig& final_cfg) {
                        cohort::child_main_blocked<Dim>(
                            mask, params, method, bd, final_cfg, workdir,
                            lc.registry(), faults);  // never returns
                      });
    };

    // A segment's first cohort resumes from the legacy block dumps the
    // previous segment left (or fresh); a mid-segment recovery resumes
    // from the newest committed epoch, because legacy dumps are only
    // consistent across blocks after a fully clean cohort exit.
    const int seg_start_gen = generation;
    liveness::EngineHooks hooks;
    hooks.spawn = spawn_child;
    hooks.poll_epochs = poll_epochs;
    hooks.committed_epoch = [&]() { return committed_epoch; };
    hooks.begin_generation = [&, seg_start_gen](int gen, long epoch) {
      lc.begin_generation(gen);
      if (epoch < 0 && gen > seg_start_gen && cur_step == 0) {
        // Epoch-less recovery of a fresh run replays from scratch: a
        // block whose owner already finished the segment carries a
        // diverged step counter and must be re-simulated, not restored.
        for (int b : active_blocks) {
          const std::string dump = cohort::legacy_block_dump_path(workdir, b);
          try {
            if (inspect_checkpoint(dump).step != 0) std::remove(dump.c_str());
          } catch (const std::exception&) {
            // Absent or torn: the restore path handles it.
          }
        }
      }
    };
    hooks.on_rank_down = [&](int rank, bool flushed) {
      lc.harvest_rank(rank, flushed);
    };
    hooks.host_of = [&](int) { return lc.host_tag(); };
    if (lc.socket_channels())
      hooks.adopt_channels = [&](int rank) { return lc.adopt_channels(rank); };
    if (board) {
      hooks.on_metrics_frame = [b = board.get()](
                                   const liveness::MetricsFrame& mf) {
        b->on_frame(mf);
      };
      hooks.on_liveness = [b = board.get()](
                              const telemetry::LivenessRecord& lr) {
        b->on_liveness(lr);
      };
    }
    hooks.fail = [&](const std::vector<liveness::EngineFailure>& fails) {
      lc.fail(fails, result.restarts);
    };

    {
      liveness::CohortEngine engine(active_list, options.liveness,
                                    options.max_restarts, std::move(hooks),
                                    &supervisor, &result.liveness,
                                    &result.restarts, &result.forks);
      try {
        engine.run(&generation, -1);
      } catch (const launcher::SpawnError& e) {
        lc.join_taggers();
        lc.fail_spawn(e, result.restarts);
      } catch (...) {
        lc.join_taggers();
        throw;
      }
    }
    poll_epochs();

    // Fold this segment's telemetry: into the whole-run accumulation, and
    // into the per-block costs the rebalance decision feeds on.
    std::vector<telemetry::RankMetrics> segment_metrics;
    for (int rank : active_list) {
      telemetry::RankMetrics seg;
      seg.rank = rank;
      try {
        for (telemetry::RankMetrics& rm : telemetry::read_metrics_jsonl(
                 cohort::metrics_path(workdir, rank)))
          if (rm.rank == rank) seg = std::move(rm);
      } catch (const std::exception&) {
        // A missing stream degrades this rank to zeros for the segment.
      }
      // The folded stream must not be readable twice: a rank killed early
      // in the NEXT segment — before its first flush truncates the file —
      // would otherwise harvest this segment's totals a second time.
      std::remove(cohort::metrics_path(workdir, rank).c_str());
      lc.harvested()[rank].rank = rank;
      telemetry::merge_metrics(lc.harvested()[rank], seg);
      segment_metrics.push_back(std::move(seg));
    }

    cur_step = seg_target;

    if (options.rebalance_interval > 0 && cur_step < target_step) {
      std::vector<BlockCost> costs;
      costs.reserve(active_blocks.size());
      for (size_t i = 0; i < active_list.size(); ++i) {
        const telemetry::RankMetrics& rm = segment_metrics[i];
        for (int b : bd.blocks_of(active_list[i])) {
          BlockCost c;
          c.block = b;
          c.cells = bd.block_cells(b);
          const auto it =
              rm.timers.find("compute.block_" + std::to_string(b));
          if (it != rm.timers.end()) c.t_calc_s = it->second.total_s;
          costs.push_back(c);
        }
      }
      const RebalanceDecision decision =
          propose_rebalance(bd.owner_map(), costs, bd.rank_count(),
                            options.rebalance_threshold);
      if (decision.rebalance) {
        bd.set_owner_map(decision.owner);
        telemetry::RebalanceRecord rec;
        rec.step = cur_step;
        rec.moved_blocks = static_cast<int>(decision.moves.size());
        rec.imbalance_before = decision.imbalance_before;
        rec.imbalance_after = decision.imbalance_after;
        result.rebalances.push_back(rec);
        if (board) {
          board->on_rebalance(rec);
          board->set_owner_map(bd.owner_map());
        }
        supervisor.metrics().counter(-1, "rebalance.count").add();
        supervisor.metrics()
            .counter(-1, "rebalance.moved_blocks")
            .add(rec.moved_blocks);
        std::fprintf(stderr,
                     "[supervisor] rebalance at step %ld: %d block(s) move, "
                     "imbalance %.2f -> %.2f\n",
                     rec.step, rec.moved_blocks, rec.imbalance_before,
                     rec.imbalance_after);
      }
    }
  }
  lc.join_taggers();
  std::remove((workdir + "/cohort.spec").c_str());
  if (board) board->set_done(true);
  result.committed_epoch = committed_epoch;
  result.block_owner = bd.owner_map();

  // Read the common step counter back from any block dump.
  try {
    result.final_step = inspect_checkpoint(cohort::legacy_block_dump_path(
                                               workdir, active_blocks[0]))
                            .step;
  } catch (const std::exception&) {
    // keep target_step
  }

  std::vector<telemetry::RankMetrics> rank_metrics;
  rank_metrics.reserve(active_list.size());
  for (int rank : active_list) {
    auto it = lc.harvested().find(rank);
    if (it != lc.harvested().end()) {
      rank_metrics.push_back(it->second);
    } else {
      telemetry::RankMetrics empty;
      empty.rank = rank;
      rank_metrics.push_back(std::move(empty));
    }
  }
  result.rank_stats.reserve(rank_metrics.size());
  for (const telemetry::RankMetrics& rm : rank_metrics) {
    WorkerStats ws;
    ws.compute_s = rm.t_calc();
    ws.comm_s = rm.t_com();
    result.rank_stats.push_back(ws);
  }

  telemetry::RunModelInputs model;
  model.dims = Dim;
  model.processes = static_cast<int>(active_list.size());
  double owned_nodes = 0;
  for (int b : active_blocks)
    owned_nodes += static_cast<double>(bd.box(b).count());
  model.nodes_per_rank = owned_nodes / static_cast<double>(active_list.size());
  double doubles_per_node = 0;
  for (const Phase& phase : Traits::make_schedule(method))
    if (phase.kind == Phase::Kind::kExchange)
      doubles_per_node += static_cast<double>(phase.fields.size());
  model.comm_doubles_per_node = doubles_per_node * ghost;
  model.rank_weights.reserve(active_list.size());
  for (int rank : active_list) {
    double fluid = 0;
    for (int b : bd.blocks_of(rank))
      fluid += static_cast<double>(
          mask.count_box(bd.box(b), NodeType::kFluid));
    model.rank_weights.push_back(fluid);
  }

  telemetry::RunSummary summary =
      telemetry::summarize_run(rank_metrics, model, result.restarts);
  result.rank_metrics = std::move(rank_metrics);
  summary.blocks = bd.block_count();
  summary.rebalances = result.rebalances;
  summary.liveness = result.liveness;
  result.summary_path = workdir + "/run_summary.json";
  telemetry::write_run_summary(summary, result.summary_path);
  supervisor.write_metrics_jsonl(workdir + "/supervisor.metrics.jsonl");
  if (trace_on) {
    std::vector<std::string> traces = lc.harvested_traces();
    traces.reserve(traces.size() + active_list.size());
    for (int rank : active_list)
      traces.push_back(cohort::rank_trace_path(workdir, rank));
    telemetry::merge_chrome_traces(traces, workdir + "/trace.json");
  }
  if (http) {
    http.reset();  // stop serving before the port file disappears
    std::remove((workdir + "/status.port").c_str());
  }
  return result;
}

template ProcessRunResult run_supervised_blocked<2>(const Mask2D&,
                                                    const FluidParams&, Method,
                                                    const GridShape&, int,
                                                    const std::string&,
                                                    const ProcessRunOptions&);
template ProcessRunResult run_supervised_blocked<3>(const Mask3D&,
                                                    const FluidParams&, Method,
                                                    const GridShape&, int,
                                                    const std::string&,
                                                    const ProcessRunOptions&);

}  // namespace subsonic
