// run_supervised_blocked<Dim>: the over-decomposed half of the process
// runtime (supervisor.hpp documents the contract).  Structure mirrors
// run_supervised, with two deltas: checkpoints and final dumps are
// per-*block* (owner-agnostic, so a restart works under any owner map),
// and when rebalancing is enabled the run proceeds in segments of
// rebalance_interval steps — at each segment boundary every child has
// exited cleanly at the same step with its blocks' state on disk, the
// supervisor folds the segment's per-block compute timers into a
// rebalance decision, and the next segment's cohort starts under the
// (possibly rewritten) owner map.  Epoch ordering stays sound across
// segments because children number epochs from the run's global start
// step, and a mid-segment crash restores the newest committed epoch
// exactly as in the monolithic runtime.
#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "src/io/checkpoint.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/runtime/rebalancer.hpp"
#include "src/runtime/supervisor.hpp"
#include "src/runtime/supervisor_util.hpp"
#include "src/telemetry/summary.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {

namespace {

using supervisor_detail::describe_status;
using supervisor_detail::parse_id_file;

/// Start-of-run hygiene for a blocked run: every rank telemetry stream
/// goes (the aggregation below must only see this run's streams), every
/// monolithic rank_<r>.dump goes (a blocked run can never restore one),
/// and every block_<b>.dump that cannot belong to this run's block
/// geometry goes.  Matching block dumps are kept — they are what makes
/// repeated calls continue a run.
template <int Dim>
void clean_stale_blocked_artifacts(
    const std::string& workdir,
    const typename DomainTraits<Dim>::BlockDecomp& bd, Method method,
    int ghost) {
  using Traits = DomainTraits<Dim>;
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(workdir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) names.push_back(entry->d_name);
    ::closedir(dir);
  }
  for (const std::string& name : names) {
    if (name.find(".epoch_") != std::string::npos) continue;  // cleared already
    if (parse_id_file(name, "rank_", ".metrics.jsonl") >= 0 ||
        parse_id_file(name, "rank_", ".trace.json") >= 0 ||
        parse_id_file(name, "rank_", ".dump") >= 0) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    const int block = parse_id_file(name, "block_", ".dump");
    if (block < 0) continue;
    if (block >= bd.block_count() || !bd.block_active(block)) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    try {
      const CheckpointInfo info = inspect_checkpoint(workdir + "/" + name);
      if (!Traits::box_matches(info, bd.box(block)) ||
          info.method != static_cast<int>(method) || info.ghost != ghost)
        std::remove((workdir + "/" + name).c_str());
    } catch (const std::exception&) {
      // Unreadable or torn: keep it and let the restore report it.
    }
  }
}

}  // namespace

template <int Dim>
ProcessRunResult run_supervised_blocked(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const GridShape& grid, int steps,
    const std::string& workdir, const ProcessRunOptions& options) {
  using Traits = DomainTraits<Dim>;
  params.validate();
  SUBSONIC_REQUIRE(steps >= 1);
  SUBSONIC_REQUIRE(options.checkpoint_interval >= 0);
  SUBSONIC_REQUIRE(options.max_restarts >= 0);
  SUBSONIC_REQUIRE(options.recv_deadline_ms >= 0);
  SUBSONIC_REQUIRE(options.rebalance_interval >= 0);
  SUBSONIC_REQUIRE(options.rebalance_threshold >= 1.0);

  const int ghost = required_ghost(method, params.filter_eps > 0.0);
  const int side = options.block_side > 0
                       ? options.block_side
                       : block_side_from_env(kDefaultBlockSide);
  typename Traits::BlockDecomp bd =
      Traits::make_block_decomposition(mask, grid, side, ghost);

  const FaultPlan faults = options.faults.empty()
                               ? FaultPlan::from_env()
                               : FaultPlan::parse(options.faults);

  const std::string registry = workdir + "/ports";
  std::remove(registry.c_str());
  epoch::clear_run_state(workdir);
  clean_stale_blocked_artifacts<Dim>(workdir, bd, method, ghost);
  std::remove((workdir + "/trace.json").c_str());
  std::remove((workdir + "/run_summary.json").c_str());
  std::remove((workdir + "/supervisor.metrics.jsonl").c_str());

  const bool trace_on =
      options.trace > 0 ||
      (options.trace < 0 && telemetry::trace_enabled_from_env());
  telemetry::SessionConfig sup_cfg;
  sup_cfg.trace = trace_on;
  telemetry::Session supervisor(sup_cfg);

  std::vector<int> active_blocks;
  for (int b = 0; b < bd.block_count(); ++b)
    if (bd.block_active(b)) active_blocks.push_back(b);

  // Continuation runs resume from the legacy per-block dumps.
  long start_step = 0;
  if (!active_blocks.empty()) {
    try {
      start_step = inspect_checkpoint(cohort::legacy_block_dump_path(
                                          workdir, active_blocks[0]))
                       .step;
    } catch (const std::exception&) {
      start_step = 0;  // absent or unreadable: fresh run
    }
  }
  const long target_step = start_step + steps;

  ProcessRunResult result;
  result.blocks = bd.block_count();
  result.final_step = target_step;
  result.block_owner = bd.owner_map();
  if (active_blocks.empty()) return result;

  int generation = 0;        // counts every spawned cohort
  long committed_epoch = -1;

  auto poll_epochs = [&]() {
    if (options.checkpoint_interval <= 0) return;
    for (;;) {
      const long e = committed_epoch + 1;
      long step = -1;
      bool complete = true;
      for (int b : active_blocks) {
        try {
          const CheckpointInfo info =
              inspect_checkpoint(epoch::block_dump_path(workdir, b, e));
          if (step < 0) step = info.step;
          complete = complete && info.step == step;
        } catch (const std::exception&) {
          complete = false;
        }
        if (!complete) break;
      }
      if (!complete) return;
      epoch::Manifest m;
      m.epoch = e;
      m.step = step;
      m.ranks = active_blocks;  // block ids: the blocked runtime's unit
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.commit", "ckpt",
                                   step);
        epoch::commit_manifest(workdir, m);
      }
      committed_epoch = e;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.gc", "ckpt", step);
        epoch::gc_block_epochs(workdir, active_blocks, e);
      }
    }
  };

  // Whole-run telemetry, accumulated across segments (children rewrite
  // their per-rank streams every cohort).
  std::map<int, telemetry::RankMetrics> accumulated;
  // The ranks of the *last* segment, for the final aggregation below.
  std::vector<int> active_list = bd.active_ranks();
  result.processes = static_cast<int>(active_list.size());

  long cur_step = start_step;
  while (cur_step < target_step) {
    const long seg_target =
        options.rebalance_interval > 0
            ? std::min(target_step, cur_step + options.rebalance_interval)
            : target_step;
    active_list = bd.active_ranks();
    result.processes = static_cast<int>(active_list.size());

    auto spawn_cohort = [&](long restore_epoch) -> cohort::Cohort {
      std::remove(registry.c_str());
      std::fflush(nullptr);
      cohort::Cohort cohort;
      cohort.pids.reserve(active_list.size());
      for (size_t i = 0; i < active_list.size(); ++i) {
        cohort::ChildConfig cfg;
        cfg.rank = active_list[i];
        cfg.generation = generation;
        cfg.target_step = seg_target;
        cfg.start_step = start_step;
        cfg.final_target = target_step;
        cfg.restore_epoch = restore_epoch;
        cfg.checkpoint_interval = options.checkpoint_interval;
        cfg.stagger_index = static_cast<int>(i);
        cfg.recv_deadline_ms = options.recv_deadline_ms;
        cfg.sched = options.sched;
        cfg.threads = options.threads;
        cfg.trace = trace_on;
        cfg.origin_ns = supervisor.origin_ns();
        int err_pipe[2];
        SUBSONIC_REQUIRE_MSG(::pipe(err_pipe) == 0, "pipe failed");
        const pid_t pid = ::fork();
        SUBSONIC_REQUIRE_MSG(pid >= 0, "fork failed");
        if (pid == 0) {
          ::dup2(err_pipe[1], 2);
          ::close(err_pipe[0]);
          ::close(err_pipe[1]);
          cohort::child_main_blocked<Dim>(mask, params, method, bd, cfg,
                                          workdir, registry,
                                          faults);  // never returns
        }
        ::close(err_pipe[1]);
        cohort.taggers.emplace_back(cohort::tag_child_stderr, err_pipe[0],
                                    active_list[i]);
        cohort.pids.push_back(pid);
      }
      cohort.reaped.assign(cohort.pids.size(), false);
      cohort.status.assign(cohort.pids.size(), 0);
      return cohort;
    };

    auto join_taggers = [](cohort::Cohort& cohort) {
      for (std::thread& t : cohort.taggers)
        if (t.joinable()) t.join();
    };

    bool first_attempt = true;
    for (;;) {
      // A segment's first cohort resumes from the legacy block dumps the
      // previous segment left (or fresh); a crash-restart resumes from
      // the newest committed epoch, because legacy dumps are only
      // consistent across blocks after a fully clean cohort exit.
      cohort::Cohort cohort =
          spawn_cohort(first_attempt ? -1 : committed_epoch);
      first_attempt = false;
      ++generation;

      bool failure = false;
      size_t live = cohort.pids.size();
      while (live > 0 && !failure) {
        bool progressed = false;
        for (size_t i = 0; i < cohort.pids.size(); ++i) {
          if (cohort.reaped[i]) continue;
          int status = 0;
          const pid_t r = ::waitpid(cohort.pids[i], &status, WNOHANG);
          if (r == cohort.pids[i]) {
            cohort.reaped[i] = true;
            cohort.status[i] = status;
            --live;
            progressed = true;
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
              failure = true;
          }
        }
        poll_epochs();
        if (!progressed && !failure && live > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }

      if (failure) {
        for (size_t i = 0; i < cohort.pids.size(); ++i)
          if (!cohort.reaped[i]) ::kill(cohort.pids[i], SIGKILL);
        for (size_t i = 0; i < cohort.pids.size(); ++i) {
          if (cohort.reaped[i]) continue;
          int status = 0;
          if (::waitpid(cohort.pids[i], &status, 0) == cohort.pids[i]) {
            cohort.reaped[i] = true;
            cohort.status[i] = status;
          }
        }
        join_taggers(cohort);
        poll_epochs();

        if (result.restarts >= options.max_restarts) {
          std::remove(registry.c_str());
          std::vector<RankFailure> failures;
          std::ostringstream msg;
          msg << "parallel run failed after " << result.restarts
              << " restart(s);";
          for (size_t i = 0; i < cohort.pids.size(); ++i) {
            const int status = cohort.status[i];
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
            RankFailure f;
            f.rank = active_list[i];
            f.wait_status = status;
            f.detail = describe_status(status);
            msg << " rank " << f.rank << ": " << f.detail << ';';
            failures.push_back(std::move(f));
          }
          throw ProcessRunError(msg.str(), std::move(failures));
        }
        ++result.restarts;
        supervisor.metrics().counter(-1, "restart.count").add();
        continue;  // respawn from the newest committed epoch (or scratch)
      }

      join_taggers(cohort);
      poll_epochs();
      break;
    }

    // Fold this segment's telemetry: into the whole-run accumulation, and
    // into the per-block costs the rebalance decision feeds on.
    std::vector<telemetry::RankMetrics> segment_metrics;
    for (int rank : active_list) {
      telemetry::RankMetrics seg;
      seg.rank = rank;
      try {
        for (telemetry::RankMetrics& rm : telemetry::read_metrics_jsonl(
                 cohort::metrics_path(workdir, rank)))
          if (rm.rank == rank) seg = std::move(rm);
      } catch (const std::exception&) {
        // A missing stream degrades this rank to zeros for the segment.
      }
      telemetry::merge_metrics(accumulated[rank], seg);
      segment_metrics.push_back(std::move(seg));
    }

    cur_step = seg_target;

    if (options.rebalance_interval > 0 && cur_step < target_step) {
      std::vector<BlockCost> costs;
      costs.reserve(active_blocks.size());
      for (size_t i = 0; i < active_list.size(); ++i) {
        const telemetry::RankMetrics& rm = segment_metrics[i];
        for (int b : bd.blocks_of(active_list[i])) {
          BlockCost c;
          c.block = b;
          c.cells = bd.block_cells(b);
          const auto it =
              rm.timers.find("compute.block_" + std::to_string(b));
          if (it != rm.timers.end()) c.t_calc_s = it->second.total_s;
          costs.push_back(c);
        }
      }
      const RebalanceDecision decision =
          propose_rebalance(bd.owner_map(), costs, bd.rank_count(),
                            options.rebalance_threshold);
      if (decision.rebalance) {
        bd.set_owner_map(decision.owner);
        telemetry::RebalanceRecord rec;
        rec.step = cur_step;
        rec.moved_blocks = static_cast<int>(decision.moves.size());
        rec.imbalance_before = decision.imbalance_before;
        rec.imbalance_after = decision.imbalance_after;
        result.rebalances.push_back(rec);
        supervisor.metrics().counter(-1, "rebalance.count").add();
        supervisor.metrics()
            .counter(-1, "rebalance.moved_blocks")
            .add(rec.moved_blocks);
        std::fprintf(stderr,
                     "[supervisor] rebalance at step %ld: %d block(s) move, "
                     "imbalance %.2f -> %.2f\n",
                     rec.step, rec.moved_blocks, rec.imbalance_before,
                     rec.imbalance_after);
      }
    }
  }
  std::remove(registry.c_str());
  result.committed_epoch = committed_epoch;
  result.block_owner = bd.owner_map();

  // Read the common step counter back from any block dump.
  try {
    result.final_step = inspect_checkpoint(cohort::legacy_block_dump_path(
                                               workdir, active_blocks[0]))
                            .step;
  } catch (const std::exception&) {
    // keep target_step
  }

  std::vector<telemetry::RankMetrics> rank_metrics;
  rank_metrics.reserve(active_list.size());
  for (int rank : active_list) {
    auto it = accumulated.find(rank);
    if (it != accumulated.end()) {
      rank_metrics.push_back(it->second);
    } else {
      telemetry::RankMetrics empty;
      empty.rank = rank;
      rank_metrics.push_back(std::move(empty));
    }
  }
  result.rank_stats.reserve(rank_metrics.size());
  for (const telemetry::RankMetrics& rm : rank_metrics) {
    WorkerStats ws;
    ws.compute_s = rm.t_calc();
    ws.comm_s = rm.t_com();
    result.rank_stats.push_back(ws);
  }

  telemetry::RunModelInputs model;
  model.dims = Dim;
  model.processes = static_cast<int>(active_list.size());
  double owned_nodes = 0;
  for (int b : active_blocks)
    owned_nodes += static_cast<double>(bd.box(b).count());
  model.nodes_per_rank = owned_nodes / static_cast<double>(active_list.size());
  double doubles_per_node = 0;
  for (const Phase& phase : Traits::make_schedule(method))
    if (phase.kind == Phase::Kind::kExchange)
      doubles_per_node += static_cast<double>(phase.fields.size());
  model.comm_doubles_per_node = doubles_per_node * ghost;
  model.rank_weights.reserve(active_list.size());
  for (int rank : active_list) {
    double fluid = 0;
    for (int b : bd.blocks_of(rank))
      fluid += static_cast<double>(
          mask.count_box(bd.box(b), NodeType::kFluid));
    model.rank_weights.push_back(fluid);
  }

  telemetry::RunSummary summary =
      telemetry::summarize_run(rank_metrics, model, result.restarts);
  summary.blocks = bd.block_count();
  summary.rebalances = result.rebalances;
  result.summary_path = workdir + "/run_summary.json";
  telemetry::write_run_summary(summary, result.summary_path);
  supervisor.write_metrics_jsonl(workdir + "/supervisor.metrics.jsonl");
  if (trace_on) {
    std::vector<std::string> traces;
    traces.reserve(active_list.size());
    for (int rank : active_list)
      traces.push_back(cohort::rank_trace_path(workdir, rank));
    telemetry::merge_chrome_traces(traces, workdir + "/trace.json");
  }
  return result;
}

template ProcessRunResult run_supervised_blocked<2>(const Mask2D&,
                                                    const FluidParams&, Method,
                                                    const GridShape&, int,
                                                    const std::string&,
                                                    const ProcessRunOptions&);
template ProcessRunResult run_supervised_blocked<3>(const Mask3D&,
                                                    const FluidParams&, Method,
                                                    const GridShape&, int,
                                                    const std::string&,
                                                    const ProcessRunOptions&);

}  // namespace subsonic
