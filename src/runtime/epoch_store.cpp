#include "src/runtime/epoch_store.hpp"

#include <dirent.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/io/atomic_file.hpp"

namespace subsonic {

namespace epoch {

std::string manifest_path(const std::string& workdir) {
  return workdir + "/MANIFEST";
}

std::string dump_path(const std::string& workdir, int rank, long e) {
  return workdir + "/rank_" + std::to_string(rank) + ".epoch_" +
         std::to_string(e) + ".dump";
}

std::string block_dump_path(const std::string& workdir, int block, long e) {
  return workdir + "/block_" + std::to_string(block) + ".epoch_" +
         std::to_string(e) + ".dump";
}

void commit_manifest(const std::string& workdir, const Manifest& m) {
  std::ostringstream out;
  out << "epoch " << m.epoch << '\n' << "step " << m.step << '\n' << "ranks";
  for (int r : m.ranks) out << ' ' << r;
  out << '\n';
  const std::string text = out.str();
  atomic_write_file(manifest_path(workdir), text.data(), text.size());
}

std::optional<Manifest> read_manifest(const std::string& workdir) {
  std::ifstream in(manifest_path(workdir));
  if (!in.good()) return std::nullopt;
  Manifest m;
  std::string key;
  if (!(in >> key) || key != "epoch" || !(in >> m.epoch)) return std::nullopt;
  if (!(in >> key) || key != "step" || !(in >> m.step)) return std::nullopt;
  if (!(in >> key) || key != "ranks") return std::nullopt;
  int r = 0;
  while (in >> r) m.ranks.push_back(r);
  if (m.epoch < 0 || m.ranks.empty()) return std::nullopt;
  return m;
}

void gc_epochs(const std::string& workdir, const std::vector<int>& ranks,
               long keep_from) {
  for (long e = keep_from - 1; e >= 0; --e) {
    bool any = false;
    for (int r : ranks)
      if (std::remove(dump_path(workdir, r, e).c_str()) == 0) any = true;
    if (!any) break;  // older epochs were already collected
  }
}

void gc_block_epochs(const std::string& workdir,
                     const std::vector<int>& blocks, long keep_from) {
  for (long e = keep_from - 1; e >= 0; --e) {
    bool any = false;
    for (int b : blocks)
      if (std::remove(block_dump_path(workdir, b, e).c_str()) == 0)
        any = true;
    if (!any) break;  // older epochs were already collected
  }
}

void clear_run_state(const std::string& workdir) {
  std::remove(manifest_path(workdir).c_str());
  DIR* dir = ::opendir(workdir.c_str());
  if (!dir) return;
  std::vector<std::string> doomed;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const bool epoch_dump = (name.rfind("rank_", 0) == 0 ||
                             name.rfind("block_", 0) == 0) &&
                            name.find(".epoch_") != std::string::npos &&
                            name.size() >= 5 &&
                            name.compare(name.size() - 5, 5, ".dump") == 0;
    const bool tmp = name.size() >= 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (epoch_dump || tmp) doomed.push_back(workdir + "/" + name);
  }
  ::closedir(dir);
  for (const std::string& path : doomed) std::remove(path.c_str());
}

}  // namespace epoch

}  // namespace subsonic
