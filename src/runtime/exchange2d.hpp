// Ghost-exchange plans (the paper's "communicate boundary with the
// neighbouring subregions", sections 3-4.2).  For every neighbour link the
// plan records which slab of this rank's interior must be sent (it lands
// in the neighbour's padding) and which slab of this rank's padding is
// filled by the neighbour's interior.  Periodic axes wrap; links to
// inactive (all-solid) subregions are dropped.
#pragma once

#include <vector>

#include "src/decomp/decomposition.hpp"
#include "src/solver/domain2d.hpp"

namespace subsonic {

struct LinkPlan2D {
  int peer = -1;      ///< neighbour rank
  int dir = 0;        ///< direction index of this link, (dy+1)*3 + (dx+1)
  int peer_dir = 0;   ///< the same link as seen from the peer
  Box2 send_box;      ///< local coords: interior slab we send
  Box2 recv_box;      ///< local coords: padding slab we receive
};

/// Builds the link plans for `rank`.  `active[r]` marks ranks that own at
/// least one non-solid node; pass an empty vector to treat all as active.
/// Always uses the full stencil (corner blocks are required by the filter
/// and by the diagonal LB populations).
std::vector<LinkPlan2D> make_link_plans2d(const Decomposition2D& d, int rank,
                                          int ghost, bool periodic_x,
                                          bool periodic_y,
                                          const std::vector<bool>& active);

/// Packs `fields` of `dom` over `box` (local coords) into a flat payload,
/// field-major, then row-major (y outer, x inner).
std::vector<double> pack2d(const Domain2D& dom,
                           const std::vector<FieldId>& fields, Box2 box);

/// Unpacks a payload produced by pack2d into `box` of `dom`.
void unpack2d(Domain2D& dom, const std::vector<FieldId>& fields, Box2 box,
              const std::vector<double>& payload);

}  // namespace subsonic
