// The ExecLauncher child binary.  Where a forked child inherits its world
// by address, this program receives a ChildConfig as "key=value" argv
// tokens and rebuilds the mask / params / decomposition from the cohort
// spec file — proving the child body depends on no inherited supervisor
// state, which is the precondition for launching it on another host.
// The decomposition factories are deterministic, so the rebuilt world —
// and therefore every dump and every exchanged byte — is bitwise
// identical to the forked child's.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/decomp/decomposition.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/cohort_spec.hpp"
#include "src/runtime/domain_traits.hpp"
#include "src/util/fault_plan.hpp"

namespace {

using subsonic::cohort::ChildConfig;

class ArgMap {
 public:
  ArgMap(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("expected key=value, got \"" + arg +
                                    "\"");
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  std::string str(const char* key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end())
      throw std::invalid_argument(std::string("missing argument ") + key);
    return it->second;
  }
  long long num(const char* key) const { return std::stoll(str(key)); }

 private:
  std::map<std::string, std::string> kv_;
};

template <int Dim>
[[noreturn]] void run(const subsonic::cohort::CohortSpec& spec,
                      const ChildConfig& cfg, bool blocked,
                      const std::string& workdir, const std::string& registry,
                      const subsonic::FaultPlan& faults) {
  using Traits = subsonic::DomainTraits<Dim>;
  const auto& mask = [&spec]() -> const typename Traits::Mask& {
    if constexpr (Dim == 2)
      return spec.mask2;
    else
      return spec.mask3;
  }();
  spec.params.validate();
  const int ghost =
      subsonic::required_ghost(spec.method, spec.params.filter_eps > 0.0);
  if (blocked) {
    auto bd = Traits::make_block_decomposition(mask, spec.grid,
                                               spec.block_side, ghost);
    if (!spec.owner.empty()) bd.set_owner_map(spec.owner);
    subsonic::cohort::child_main_blocked<Dim>(mask, spec.params, spec.method,
                                              bd, cfg, workdir, registry,
                                              faults);
  } else {
    const auto decomp = Traits::make_decomposition(mask, spec.grid);
    const auto active_list = subsonic::active_ranks(decomp, mask);
    std::vector<bool> active(decomp.rank_count(), false);
    for (int r : active_list) active[r] = true;
    subsonic::cohort::child_main<Dim>(mask, spec.params, spec.method, decomp,
                                      active, cfg, workdir, registry, faults);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgMap args(argc, argv);
    ChildConfig cfg;
    cfg.rank = static_cast<int>(args.num("rank"));
    cfg.generation = static_cast<int>(args.num("generation"));
    cfg.target_step = args.num("target_step");
    cfg.start_step = args.num("start_step");
    cfg.final_target = args.num("final_target");
    cfg.restore_epoch = args.num("restore_epoch");
    cfg.checkpoint_interval = static_cast<int>(args.num("checkpoint_interval"));
    cfg.stagger_index = static_cast<int>(args.num("stagger_index"));
    cfg.recv_deadline_ms = static_cast<int>(args.num("recv_deadline_ms"));
    cfg.sched = static_cast<subsonic::Scheduling>(args.num("sched"));
    cfg.threads = static_cast<int>(args.num("threads"));
    cfg.trace = args.num("trace") != 0;
    cfg.origin_ns = args.num("origin_ns");
    cfg.heartbeat_fd = static_cast<int>(args.num("heartbeat_fd"));
    cfg.control_fd = static_cast<int>(args.num("control_fd"));
    cfg.beacon_interval_ms = static_cast<int>(args.num("beacon_interval_ms"));
    cfg.metrics_flush_interval =
        static_cast<int>(args.num("metrics_flush_interval"));
    cfg.channel_endpoint = args.str("channel_endpoint");
    const int dim = static_cast<int>(args.num("dim"));
    const bool blocked = args.num("blocked") != 0;
    const std::string workdir = args.str("workdir");
    const std::string registry = args.str("registry");
    const std::string faults_spec = args.str("faults");

    const subsonic::FaultPlan faults = faults_spec.empty()
                                           ? subsonic::FaultPlan::from_env()
                                           : subsonic::FaultPlan::parse(
                                                 faults_spec);
    const subsonic::cohort::CohortSpec spec =
        subsonic::cohort::read_cohort_spec(args.str("spec"));
    if (dim != spec.dim)
      throw std::runtime_error("cohort spec dimension mismatch");

    if (dim == 2)
      run<2>(spec, cfg, blocked, workdir, registry, faults);
    else if (dim == 3)
      run<3>(spec, cfg, blocked, workdir, registry, faults);
    std::fprintf(stderr, "subsonic_child: unsupported dimension %d\n", dim);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subsonic_child: %s\n", e.what());
  }
  return 1;  // child_main never returns; reaching here is a setup failure
}
