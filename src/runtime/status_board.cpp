#include "src/runtime/status_board.hpp"

#include <cstdio>
#include <sstream>

#include "src/runtime/cohort.hpp"
#include "src/telemetry/prometheus.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {
namespace liveness {

namespace {

constexpr std::size_t kTailMax = 64;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_number(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

}  // namespace

void StatusBoard::configure(Config cfg) {
  std::lock_guard<std::mutex> lock(mutex_);
  cfg_ = std::move(cfg);
  for (int r : cfg_.ranks) live_[r];  // seed every rank as "starting"
}

void StatusBoard::on_frame(const MetricsFrame& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankLive& rl = live_[frame.rank];
  rl.has_frame = true;
  rl.frame = frame;
  rl.generation = frame.round;
  if (rl.state == "starting" || rl.state == "hung") rl.state = "running";
}

void StatusBoard::on_liveness(const telemetry::LivenessRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  liveness_tail_.push_back(record);
  if (liveness_tail_.size() > kTailMax) liveness_tail_.pop_front();
  RankLive& rl = live_[record.rank];
  rl.last_event = record.event;
  rl.generation = record.generation;
  if (record.event == "hang_detected")
    rl.state = "hung";
  else if (record.event == "exit_detected")
    rl.state = "down";
  else if (record.event == "restart" || record.event == "rollback")
    rl.state = "running";
}

void StatusBoard::on_rebalance(const telemetry::RebalanceRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  rebalance_tail_.push_back(record);
  if (rebalance_tail_.size() > kTailMax) rebalance_tail_.pop_front();
}

void StatusBoard::on_harvest(int rank,
                             const telemetry::RankMetrics& harvested) {
  std::lock_guard<std::mutex> lock(mutex_);
  harvested_[rank] = harvested;
}

void StatusBoard::set_owner_map(std::vector<int> owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  owner_ = std::move(owner);
}

void StatusBoard::set_done(bool done) {
  std::lock_guard<std::mutex> lock(mutex_);
  done_ = done;
  if (done)
    for (auto& [rank, rl] : live_) rl.state = "done";
}

bool StatusBoard::handle(const std::string& path, std::string* body,
                         std::string* content_type) const {
  if (path == "/healthz") {
    *body = "ok\n";
    *content_type = "text/plain; charset=utf-8";
    return true;
  }
  if (path == "/status") {
    *body = status_json();
    *content_type = "application/json";
    return true;
  }
  if (path == "/metrics") {
    *body = metrics_text();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  return false;
}

std::string StatusBoard::status_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"run\": {\"workdir\": \"" << json_escape(cfg_.workdir)
     << "\", \"dims\": " << cfg_.dims
     << ", \"processes\": " << cfg_.ranks.size()
     << ", \"start_step\": " << cfg_.start_step
     << ", \"target_step\": " << cfg_.target_step
     << ", \"blocks\": " << cfg_.blocks
     << ", \"launcher\": \"" << json_escape(cfg_.launcher)
     << "\", \"done\": " << (done_ ? "true" : "false") << "},\n";
  os << "  \"ranks\": [";
  bool first = true;
  for (std::size_t i = 0; i < cfg_.ranks.size(); ++i) {
    const int rank = cfg_.ranks[i];
    const auto it = live_.find(rank);
    if (it == live_.end()) continue;
    const RankLive& rl = it->second;
    if (!first) os << ',';
    first = false;
    os << "\n    {\"rank\": " << rank << ", \"state\": \"" << rl.state
       << "\", \"host\": \""
       << json_escape(i < cfg_.hosts.size() ? cfg_.hosts[i] : "")
       << "\", \"generation\": " << rl.generation;
    os << ", \"fluid_cells\": ";
    append_number(os, i < cfg_.fluid_cells.size() ? cfg_.fluid_cells[i] : 0);
    const MetricsFrame& f = rl.frame;
    os << ", \"step\": " << (rl.has_frame ? f.step : -1);
    os << ", \"steps_done\": " << (rl.has_frame ? f.steps_done : 0);
    os << ", \"t_calc_s\": ";
    append_number(os, rl.has_frame ? f.t_calc_s : 0);
    os << ", \"t_com_s\": ";
    append_number(os, rl.has_frame ? f.t_com_s : 0);
    const double busy = rl.has_frame ? f.t_calc_s + f.t_com_s : 0;
    os << ", \"utilization\": ";
    append_number(os, busy > 0 ? f.t_calc_s / busy : 0);
    os << ", \"msgs_sent\": " << (rl.has_frame ? f.msgs_sent : 0);
    os << ", \"doubles_sent\": " << (rl.has_frame ? f.doubles_sent : 0);
    telemetry::HistogramData sw;
    if (rl.has_frame) {
      for (std::size_t b = 0; b < telemetry::HistogramData::kBuckets; ++b)
        sw.buckets[b] = f.step_wall_buckets[b];
      sw.count = f.step_wall_count;
      sw.sum_s = f.step_wall_sum_s;
    }
    const telemetry::Percentiles p = telemetry::percentiles_of(sw);
    os << ", \"step_wall_p50_s\": ";
    append_number(os, p.p50_s);
    os << ", \"step_wall_p95_s\": ";
    append_number(os, p.p95_s);
    os << ", \"step_wall_p99_s\": ";
    append_number(os, p.p99_s);
    os << ", \"comm_p50_s\": ";
    append_number(os, rl.has_frame ? f.comm_p50_s : 0);
    os << ", \"comm_p95_s\": ";
    append_number(os, rl.has_frame ? f.comm_p95_s : 0);
    os << ", \"comm_p99_s\": ";
    append_number(os, rl.has_frame ? f.comm_p99_s : 0);
    os << ", \"last_event\": \"" << json_escape(rl.last_event) << "\"}";
  }
  os << "\n  ],\n";
  os << "  \"block_owner\": [";
  for (std::size_t i = 0; i < owner_.size(); ++i)
    os << (i ? "," : "") << owner_[i];
  os << "],\n";
  os << "  \"liveness\": [";
  for (std::size_t i = 0; i < liveness_tail_.size(); ++i) {
    const telemetry::LivenessRecord& lr = liveness_tail_[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"event\": \"" << json_escape(lr.event)
       << "\", \"rank\": " << lr.rank << ", \"generation\": " << lr.generation
       << ", \"step\": " << lr.step << ", \"silence_s\": ";
    append_number(os, lr.silence_s);
    os << ", \"deadline_s\": ";
    append_number(os, lr.deadline_s);
    os << ", \"epoch\": " << lr.epoch << ", \"host\": \""
       << json_escape(lr.host) << "\"}";
  }
  os << (liveness_tail_.empty() ? "],\n" : "\n  ],\n");
  os << "  \"rebalances\": [";
  for (std::size_t i = 0; i < rebalance_tail_.size(); ++i) {
    const telemetry::RebalanceRecord& rr = rebalance_tail_[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"step\": " << rr.step
       << ", \"moved_blocks\": " << rr.moved_blocks
       << ", \"imbalance_before\": ";
    append_number(os, rr.imbalance_before);
    os << ", \"imbalance_after\": ";
    append_number(os, rr.imbalance_after);
    os << "}";
  }
  os << (rebalance_tail_.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

std::string StatusBoard::metrics_text() const {
  // Snapshot under the lock, read the delta streams outside it: a scrape
  // must never stall the supervision thread on file IO.
  std::string workdir;
  std::vector<int> ranks;
  std::map<int, telemetry::RankMetrics> harvested;
  telemetry::Session* supervisor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workdir = cfg_.workdir;
    ranks = cfg_.ranks;
    harvested = harvested_;
    supervisor = cfg_.supervisor;
  }
  std::vector<telemetry::RankMetrics> rows;
  rows.reserve(ranks.size() + 1);
  for (int rank : ranks) {
    telemetry::RankMetrics total;
    total.rank = rank;
    const auto hit = harvested.find(rank);
    if (hit != harvested.end()) telemetry::merge_metrics(total, hit->second);
    try {
      for (telemetry::RankMetrics& rm : telemetry::read_metrics_jsonl(
               cohort::metrics_path(workdir, rank))) {
        if (rm.rank != rank) continue;
        telemetry::merge_metrics(total, rm);
      }
    } catch (const std::exception&) {
      // No flush yet (or a vanished stream): serve what was harvested.
    }
    rows.push_back(std::move(total));
  }
  if (supervisor)
    rows.push_back(telemetry::collect_rank(supervisor->metrics(), -1));
  return telemetry::prometheus_text(rows);
}

}  // namespace liveness
}  // namespace subsonic
