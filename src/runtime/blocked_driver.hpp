// Threaded driver over an over-decomposed grid: one worker thread per rank
// owning at least one block, each running a BlockSet over the shared
// transport.  This is the in-process twin of ParallelDriver lifted to the
// block runtime — equivalence tests pin blocked runs bitwise to monolithic
// ones, and the save_blocks/restore_blocks pair (per-*block* dump files)
// is what makes a mid-run owner-map rewrite a pure re-assignment: save,
// rebuild the driver with the edited map, restore, continue.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/comm/transport.hpp"
#include "src/runtime/block_set.hpp"
#include "src/runtime/domain_traits.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

template <int Dim>
class BlockedDriver {
 public:
  using Traits = DomainTraits<Dim>;
  using Mask = typename Traits::Mask;
  using Domain = typename Traits::Domain;
  using BlockDecomp = typename Traits::BlockDecomp;
  using Field = typename Traits::Field;

  /// Over-decomposes `mask` into ~`block_side`-sided blocks seeded onto
  /// the `grid` rank layout.  `block_side` <= 0 resolves via
  /// SUBSONIC_BLOCKS with kDefaultBlockSide as the fallback.  The other
  /// parameters mirror ParallelDriver.
  BlockedDriver(const Mask& mask, const FluidParams& params, Method method,
                const GridShape& grid, int block_side,
                std::shared_ptr<Transport> transport = nullptr,
                Scheduling sched = Scheduling::kOverlap, int threads = 0);

  /// Same, over an explicit block decomposition — the constructor a
  /// rebalance uses to restart with a rewritten owner map.
  BlockedDriver(const Mask& mask, const FluidParams& params, Method method,
                const BlockDecomp& bd,
                std::shared_ptr<Transport> transport = nullptr,
                Scheduling sched = Scheduling::kOverlap, int threads = 0);

  /// Runs `n` integration steps on every rank, one thread each.
  void run(int n);

  const BlockDecomp& blocks() const { return bd_; }
  int active_count() const { return static_cast<int>(sets_.size()); }

  /// Common step counter of every block.
  long step() const;

  /// The domain of global block `block` (must be active).
  Domain& block_domain(int block);

  /// Assembles the global interior of a field from the blocks; inactive
  /// blocks contribute the quiescent state.
  Field gather(FieldId id) const;

  /// Call after editing block fields: re-seeds LB equilibria and refreshes
  /// every ghost region (all fields).
  void reinitialize();

  /// Writes one dump per active block into `dir` ("block_<b>.dump"), in
  /// block order.  Block dumps are owner-agnostic: any later driver whose
  /// decomposition cuts the same block boxes can restore them, whatever
  /// its owner map says.
  void save_blocks(const std::string& dir) const;

  /// Restores dumps written by save_blocks for the same block geometry,
  /// method and parameters.
  void restore_blocks(const std::string& dir);

  telemetry::Session& telemetry() { return *telemetry_; }
  const telemetry::Session& telemetry() const { return *telemetry_; }

 private:
  void init(const Mask& mask, int threads);
  /// Refreshes every ghost region (all fields, populations included)
  /// without touching interior state.
  void sync_ghosts();
  /// Runs `fn(set)` concurrently, one thread per rank, rethrowing the
  /// first worker exception.
  template <typename Fn>
  void for_each_set(Fn&& fn);

  BlockDecomp bd_;
  FluidParams params_;
  Method method_;
  int ghost_;
  Scheduling sched_ = Scheduling::kOverlap;
  std::shared_ptr<Transport> transport_;
  std::unique_ptr<telemetry::Session> telemetry_;
  std::vector<std::unique_ptr<BlockSet<Dim>>> sets_;
};

extern template class BlockedDriver<2>;
extern template class BlockedDriver<3>;

}  // namespace subsonic
