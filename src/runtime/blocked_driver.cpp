#include "src/runtime/blocked_driver.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "src/comm/in_memory_transport.hpp"
#include "src/io/checkpoint.hpp"
#include "src/util/check.hpp"

namespace subsonic {

template <int Dim>
BlockedDriver<Dim>::BlockedDriver(const Mask& mask, const FluidParams& params,
                                  Method method, const GridShape& grid,
                                  int block_side,
                                  std::shared_ptr<Transport> transport,
                                  Scheduling sched, int threads)
    : BlockedDriver(
          mask, params, method,
          Traits::make_block_decomposition(
              mask, grid,
              block_side > 0 ? block_side
                             : block_side_from_env(kDefaultBlockSide),
              required_ghost(method, params.filter_eps > 0.0)),
          std::move(transport), sched, threads) {}

template <int Dim>
BlockedDriver<Dim>::BlockedDriver(const Mask& mask, const FluidParams& params,
                                  Method method, const BlockDecomp& bd,
                                  std::shared_ptr<Transport> transport,
                                  Scheduling sched, int threads)
    : bd_(bd),
      params_(params),
      method_(method),
      ghost_(required_ghost(method, params.filter_eps > 0.0)),
      sched_(sched),
      transport_(std::move(transport)) {
  init(mask, threads);
}

template <int Dim>
void BlockedDriver<Dim>::init(const Mask& mask, int threads) {
  if (!transport_)
    transport_ = std::make_shared<InMemoryTransport>(bd_.rank_count());
  telemetry_ =
      std::make_unique<telemetry::Session>(telemetry::Session::from_env());
  transport_->attach_metrics(telemetry_->metrics_ptr());

  for (int r : bd_.active_ranks())
    sets_.push_back(std::make_unique<BlockSet<Dim>>(
        mask, params_, method_, bd_, r, threads, telemetry_.get()));

  reinitialize();
}

template <int Dim>
template <typename Fn>
void BlockedDriver<Dim>::for_each_set(Fn&& fn) {
  if (sets_.empty()) return;
  if (sets_.size() == 1) {  // no threads needed
    fn(*sets_[0]);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(sets_.size());
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (auto& set : sets_) {
    threads.emplace_back([&fn, &set, &first_error, &error_mutex] {
      try {
        fn(*set);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

template <int Dim>
void BlockedDriver<Dim>::run(int n) {
  for_each_set([this, n](BlockSet<Dim>& set) {
    const int rank = set.rank();
    auto send = [this, rank](int dst, MessageTag tag,
                             std::vector<double> payload) {
      transport_->send(rank, dst, tag, std::move(payload));
    };
    auto recv = [this, rank](int src, MessageTag tag) {
      return transport_->recv(rank, src, tag);
    };
    for (int s = 0; s < n; ++s) set.step_once(sched_, send, recv);
  });
}

template <int Dim>
long BlockedDriver<Dim>::step() const {
  SUBSONIC_REQUIRE(!sets_.empty());
  const long s = sets_[0]->step();
  for (const auto& set : sets_) SUBSONIC_CHECK(set->step() == s);
  return s;
}

template <int Dim>
typename BlockedDriver<Dim>::Domain& BlockedDriver<Dim>::block_domain(
    int block) {
  SUBSONIC_REQUIRE(block >= 0 && block < bd_.block_count());
  SUBSONIC_REQUIRE_MSG(bd_.block_active(block), "block is inactive");
  for (auto& set : sets_)
    if (set->rank() == bd_.owner(block)) return set->domain_of_block(block);
  SUBSONIC_REQUIRE_MSG(false, "owner rank has no block set");
  return sets_[0]->domain_of_block(block);  // unreachable
}

template <int Dim>
typename BlockedDriver<Dim>::Field BlockedDriver<Dim>::gather(
    FieldId id) const {
  Field out = Traits::make_global_field(bd_.blocks());
  out.fill(Traits::quiescent(id, params_));
  for (const auto& set : sets_)
    for (int i = 0; i < set->local_count(); ++i)
      Traits::copy_interior(out, set->domain(i), id,
                            bd_.box(set->block_ids()[i]));
  return out;
}

template <int Dim>
void BlockedDriver<Dim>::sync_ghosts() {
  // Block sync tags carry a nonzero block-id field, so this counter can
  // never collide with the monolithic drivers' sync tags even on a shared
  // transport; the 2D/3D bases stay disjoint as in ParallelDriver.
  static std::atomic<long> sync_epoch{Traits::kSyncEpochBase};
  const long epoch = sync_epoch.fetch_add(1);

  for_each_set([this, epoch](BlockSet<Dim>& set) {
    const int rank = set.rank();
    auto send = [this, rank](int dst, MessageTag tag,
                             std::vector<double> payload) {
      transport_->send(rank, dst, tag, std::move(payload));
    };
    auto recv = [this, rank](int src, MessageTag tag) {
      return transport_->recv(rank, src, tag);
    };
    set.sync_all_fields(epoch, send, recv);
  });
}

template <int Dim>
void BlockedDriver<Dim>::reinitialize() {
  for_each_set([this](BlockSet<Dim>& set) {
    if (method_ == Method::kLatticeBoltzmann)
      for (int i = 0; i < set.local_count(); ++i)
        Traits::set_equilibrium(set.domain(i));
  });
  sync_ghosts();
}

template <int Dim>
void BlockedDriver<Dim>::save_blocks(const std::string& dir) const {
  // One after the other in block order — the staggered, orderly saving
  // discipline of the monolithic checkpoint path.
  for (const auto& set : sets_)
    for (int i = 0; i < set->local_count(); ++i)
      save_domain(set->domain(i),
                  dir + "/block_" + std::to_string(set->block_ids()[i]) +
                      ".dump");
}

template <int Dim>
void BlockedDriver<Dim>::restore_blocks(const std::string& dir) {
  for (auto& set : sets_)
    for (int i = 0; i < set->local_count(); ++i)
      restore_domain(set->domain(i),
                     dir + "/block_" + std::to_string(set->block_ids()[i]) +
                         ".dump");
  // The restored interiors invalidate every neighbour's ghost copy;
  // refresh them (populations included) without re-seeding equilibria.
  sync_ghosts();
}

template class BlockedDriver<2>;
template class BlockedDriver<3>;

}  // namespace subsonic
