#include "src/runtime/exchange3d.hpp"

#include "src/util/check.hpp"

namespace subsonic {

std::vector<LinkPlan3D> make_link_plans3d(const Decomposition3D& d, int rank,
                                          int ghost, bool periodic_x,
                                          bool periodic_y, bool periodic_z,
                                          const std::vector<bool>& active) {
  SUBSONIC_REQUIRE(ghost >= 1);
  const Box3 mine = d.box(rank);
  const int ci = d.coord_x(rank);
  const int cj = d.coord_y(rank);
  const int ck = d.coord_z(rank);
  const Extents3 ge = d.global();

  std::vector<LinkPlan3D> plans;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        int ni = ci + dx, nj = cj + dy, nk = ck + dz;
        int sx = 0, sy = 0, sz = 0;
        if (ni < 0) {
          if (!periodic_x) continue;
          ni += d.jx();
          sx = -ge.nx;
        } else if (ni >= d.jx()) {
          if (!periodic_x) continue;
          ni -= d.jx();
          sx = ge.nx;
        }
        if (nj < 0) {
          if (!periodic_y) continue;
          nj += d.jy();
          sy = -ge.ny;
        } else if (nj >= d.jy()) {
          if (!periodic_y) continue;
          nj -= d.jy();
          sy = ge.ny;
        }
        if (nk < 0) {
          if (!periodic_z) continue;
          nk += d.jz();
          sz = -ge.nz;
        } else if (nk >= d.jz()) {
          if (!periodic_z) continue;
          nk -= d.jz();
          sz = ge.nz;
        }
        const int peer = d.rank_of(ni, nj, nk);
        if (!active.empty() && !active[peer]) continue;

        Box3 peer_box = d.box(peer);
        peer_box = Box3{peer_box.x0 + sx, peer_box.y0 + sy, peer_box.z0 + sz,
                        peer_box.x1 + sx, peer_box.y1 + sy,
                        peer_box.z1 + sz};

        const Box3 send_g = mine.intersect(peer_box.grown(ghost));
        const Box3 recv_g = mine.grown(ghost).intersect(peer_box);
        if (send_g.empty() || recv_g.empty()) continue;
        SUBSONIC_CHECK(send_g.count() == recv_g.count());

        LinkPlan3D plan;
        plan.peer = peer;
        plan.dir = (dz + 1) * 9 + (dy + 1) * 3 + (dx + 1);
        plan.peer_dir = (-dz + 1) * 9 + (-dy + 1) * 3 + (-dx + 1);
        plan.send_box =
            Box3{send_g.x0 - mine.x0, send_g.y0 - mine.y0,
                 send_g.z0 - mine.z0, send_g.x1 - mine.x0,
                 send_g.y1 - mine.y0, send_g.z1 - mine.z0};
        plan.recv_box =
            Box3{recv_g.x0 - mine.x0, recv_g.y0 - mine.y0,
                 recv_g.z0 - mine.z0, recv_g.x1 - mine.x0,
                 recv_g.y1 - mine.y0, recv_g.z1 - mine.z0};
        plans.push_back(plan);
      }
    }
  }
  return plans;
}

std::vector<double> pack3d(const Domain3D& dom,
                           const std::vector<FieldId>& fields, Box3 box) {
  std::vector<double> payload;
  payload.reserve(static_cast<size_t>(box.count()) * fields.size());
  for (FieldId id : fields) {
    const PaddedField3D<double>& u = dom.field(id);
    for (int z = box.z0; z < box.z1; ++z)
      for (int y = box.y0; y < box.y1; ++y)
        for (int x = box.x0; x < box.x1; ++x) payload.push_back(u(x, y, z));
  }
  return payload;
}

void unpack3d(Domain3D& dom, const std::vector<FieldId>& fields, Box3 box,
              const std::vector<double>& payload) {
  SUBSONIC_REQUIRE(payload.size() ==
                   static_cast<size_t>(box.count()) * fields.size());
  size_t k = 0;
  for (FieldId id : fields) {
    PaddedField3D<double>& u = dom.field(id);
    for (int z = box.z0; z < box.z1; ++z)
      for (int y = box.y0; y < box.y1; ++y)
        for (int x = box.x0; x < box.x1; ++x) u(x, y, z) = payload[k++];
  }
}

}  // namespace subsonic
