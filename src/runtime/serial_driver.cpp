#include "src/runtime/serial_driver.hpp"

namespace subsonic {

template <int Dim>
SerialDriver<Dim>::SerialDriver(const Mask& mask, const FluidParams& params,
                                Method method, int threads)
    : schedule_(Traits::make_schedule(method)),
      domain_(mask, full_box(mask.extents()), params, method,
              required_ghost(method, params.filter_eps > 0.0), threads),
      telemetry_(std::make_unique<telemetry::Session>(
          telemetry::Session::from_env())) {
  full_sync();
}

template <int Dim>
void SerialDriver<Dim>::full_sync() {
  for (FieldId id : Traits::macro_fields())
    Traits::fill_periodic(domain_, domain_.field(id));
  for (int i = 0; i < domain_.q(); ++i)
    Traits::fill_periodic(domain_, domain_.f(i));
}

template <int Dim>
void SerialDriver<Dim>::reinitialize() {
  if (domain_.method() == Method::kLatticeBoltzmann)
    Traits::set_equilibrium(domain_);
  full_sync();
}

template <int Dim>
void SerialDriver<Dim>::run(int n) {
  telemetry::Session* const tel = telemetry_.get();
  for (int s = 0; s < n; ++s) {
    const long step = domain_.step();
    for (const Phase& phase : schedule_) {
      if (phase.kind == Phase::Kind::kCompute) {
        telemetry::ScopedSpan span(tel, 0, compute_phase_name(phase.compute),
                                   "compute", step);
        Traits::run_compute(domain_, phase.compute);
      } else {
        telemetry::ScopedSpan span(tel, 0, "comm.periodic_wrap", "comm",
                                   step);
        for (FieldId id : phase.fields)
          Traits::fill_periodic(domain_, domain_.field(id));
      }
    }
    domain_.set_step(step + 1);
    tel->metrics().counter(0, "steps").add();
  }
}

template class SerialDriver<2>;
template class SerialDriver<3>;

}  // namespace subsonic
