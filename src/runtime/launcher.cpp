#include "src/runtime/launcher.hpp"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

extern char** environ;

#ifndef SUBSONIC_CHILD_BIN_DEFAULT
#define SUBSONIC_CHILD_BIN_DEFAULT ""
#endif

namespace subsonic::launcher {

void Launcher::signal(const ChildHandle& h, int sig) {
  if (h.pid > 0) ::kill(h.pid, sig);
}

pid_t Launcher::reap(const ChildHandle& h, int* status, bool block) {
  if (h.pid <= 0) return -1;
  return ::waitpid(h.pid, status, block ? 0 : WNOHANG);
}

ChildHandle ForkLauncher::spawn(const ChildSpec& spec) {
  // Flush before fork so buffered output is not emitted twice.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0)
    throw SpawnError(std::string("fork failed: ") + std::strerror(errno),
                     spec.rank, spec.host);
  if (pid == 0) {
    if (spec.stderr_fd >= 0) {
      ::dup2(spec.stderr_fd, 2);
      if (spec.stderr_fd != 2) ::close(spec.stderr_fd);
    }
    for (int fd : spec.close_in_child)
      if (fd >= 0) ::close(fd);
    spec.entry(spec.cfg);  // never returns
    ::_exit(127);
  }
  return ChildHandle{pid, spec.rank, spec.host};
}

std::string ExecLauncher::child_binary() {
  const char* env = std::getenv("SUBSONIC_CHILD_BIN");
  if (env && *env) return env;
  return SUBSONIC_CHILD_BIN_DEFAULT;
}

ExecLauncher::ExecLauncher() : binary_(child_binary()) {
  if (binary_.empty())
    throw std::runtime_error(
        "exec launcher: no child binary (set SUBSONIC_CHILD_BIN or build "
        "the subsonic_child target)");
  if (::access(binary_.c_str(), X_OK) != 0)
    throw std::runtime_error("exec launcher: child binary not executable: " +
                             binary_);
}

ChildHandle ExecLauncher::spawn(const ChildSpec& spec) {
  const cohort::ChildConfig& cfg = spec.cfg;
  std::vector<std::string> args;
  args.push_back(binary_);
  const auto add = [&args](const char* key, long long v) {
    args.push_back(std::string(key) + "=" + std::to_string(v));
  };
  const auto add_str = [&args](const char* key, const std::string& v) {
    args.push_back(std::string(key) + "=" + v);
  };
  add("rank", cfg.rank);
  add("generation", cfg.generation);
  add("target_step", cfg.target_step);
  add("start_step", cfg.start_step);
  add("final_target", cfg.final_target);
  add("restore_epoch", cfg.restore_epoch);
  add("checkpoint_interval", cfg.checkpoint_interval);
  add("stagger_index", cfg.stagger_index);
  add("recv_deadline_ms", cfg.recv_deadline_ms);
  add("sched", static_cast<int>(cfg.sched));
  add("threads", cfg.threads);
  add("trace", cfg.trace ? 1 : 0);
  add("origin_ns", cfg.origin_ns);
  add("heartbeat_fd", cfg.heartbeat_fd);
  add("control_fd", cfg.control_fd);
  add("beacon_interval_ms", cfg.beacon_interval_ms);
  add("metrics_flush_interval", cfg.metrics_flush_interval);
  add_str("channel_endpoint", cfg.channel_endpoint);
  add("dim", spec.dim);
  add("blocked", spec.blocked ? 1 : 0);
  add_str("workdir", spec.workdir);
  add_str("registry", spec.registry);
  add_str("spec", spec.spec_path);
  add_str("faults", spec.faults);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  posix_spawn_file_actions_t fa;
  ::posix_spawn_file_actions_init(&fa);
  if (spec.stderr_fd >= 0 && spec.stderr_fd != 2) {
    ::posix_spawn_file_actions_adddup2(&fa, spec.stderr_fd, 2);
    ::posix_spawn_file_actions_addclose(&fa, spec.stderr_fd);
  }
  std::set<int> closed;
  for (int fd : spec.close_in_child)
    if (fd > 2 && fd != spec.stderr_fd && closed.insert(fd).second)
      ::posix_spawn_file_actions_addclose(&fa, fd);

  std::fflush(nullptr);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, binary_.c_str(), &fa, nullptr, argv.data(), environ);
  ::posix_spawn_file_actions_destroy(&fa);
  if (rc != 0)
    throw SpawnError("posix_spawn of " + binary_ +
                         " failed: " + std::strerror(rc),
                     spec.rank, spec.host);
  return ChildHandle{pid, spec.rank, spec.host};
}

std::string resolve_launcher_name(const std::string& requested) {
  std::string name = requested;
  if (name.empty()) {
    const char* env = std::getenv("SUBSONIC_LAUNCHER");
    if (env && *env) name = env;
  }
  if (name.empty()) name = "fork";
  if (name != "fork" && name != "exec")
    throw std::invalid_argument("unknown launcher \"" + name +
                                "\" (expected \"fork\" or \"exec\")");
  return name;
}

std::unique_ptr<Launcher> make_launcher(const std::string& requested) {
  const std::string name = resolve_launcher_name(requested);
  if (name == "exec") return std::make_unique<ExecLauncher>();
  return std::make_unique<ForkLauncher>();
}

std::string local_host_tag() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0')
    return buf;
  return "localhost";
}

}  // namespace subsonic::launcher
