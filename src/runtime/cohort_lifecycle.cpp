#include "src/runtime/cohort_lifecycle.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/runtime/status_board.hpp"
#include "src/runtime/supervisor.hpp"
#include "src/runtime/supervisor_util.hpp"
#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {
namespace cohort {

Lifecycle::Lifecycle(Setup setup) : setup_(std::move(setup)) {
  launcher_name_ = launcher::resolve_launcher_name(setup_.launcher);
  launcher_ = launcher::make_launcher(launcher_name_);
  server_ = std::make_unique<rendezvous::Server>();
  registry_ = server_->endpoint();
  host_tag_ = launcher::local_host_tag();
  spec_path_ = setup_.workdir + "/cohort.spec";
  socket_channels_ = liveness::resolve_socket_channels(*setup_.liveness);
  wants_spec_ = launcher_name_ != "fork";
}

Lifecycle::~Lifecycle() { join_taggers(); }

void Lifecycle::write_spec(const CohortSpec& spec) {
  write_cohort_spec(spec_path_, spec);
}

pid_t Lifecycle::spawn(int rank, ChildConfig cfg,
                       const std::vector<int>& close_in_child,
                       std::function<void(const ChildConfig&)> entry) {
  if (setup_.faults->spawn_fail(rank, cfg.generation))
    throw launcher::SpawnError("injected spawn failure (fault plan)", rank,
                               host_tag_);
  if (socket_channels_) cfg.channel_endpoint = registry_;

  int err_pipe[2];
  SUBSONIC_REQUIRE_MSG(::pipe(err_pipe) == 0, "pipe failed");

  launcher::ChildSpec spec;
  spec.rank = rank;
  spec.host = host_tag_;
  spec.cfg = std::move(cfg);
  spec.workdir = setup_.workdir;
  spec.registry = registry_;
  spec.spec_path = spec_path_;
  spec.faults = setup_.faults_spec;
  spec.dim = setup_.dim;
  spec.blocked = setup_.blocked;
  spec.stderr_fd = err_pipe[1];
  spec.close_in_child = close_in_child;
  spec.close_in_child.push_back(err_pipe[0]);
  spec.entry = std::move(entry);

  launcher::ChildHandle handle;
  try {
    handle = launcher_->spawn(spec);
  } catch (...) {
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    throw;
  }
  ::close(err_pipe[1]);
  taggers_.emplace_back(tag_child_stderr, err_pipe[0], rank);
  return handle.pid;
}

void Lifecycle::begin_generation(int generation) {
  server_->retire_rounds_below(generation);
}

std::pair<int, int> Lifecycle::adopt_channels(int rank) {
  // Bound the wait by the watchdog floor: a child that cannot even dial
  // its channels within the silence budget is already what the watchdog
  // calls hung, and {-1, -1} routes it into the same escalation.  Both
  // channels share ONE floor-sized budget — spawn_one() adopts ranks
  // synchronously, so per-channel budgets would let a dead cohort stall
  // the engine for 2 x floor x N ranks before escalation.
  const int floor_ms = liveness::resolve_floor_ms(*setup_.liveness);
  const auto start = std::chrono::steady_clock::now();
  const int hb = server_->take_channel("HB", rank, floor_ms);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  const int ctl_budget_ms =
      static_cast<int>(std::max<long long>(0, floor_ms - elapsed_ms));
  const int ctl = server_->take_channel("CTL", rank, ctl_budget_ms);
  return {hb, ctl};
}

void Lifecycle::harvest_rank(int rank, bool flushed) {
  const std::string mp = metrics_path(setup_.workdir, rank);
  bool got = false;
  try {
    for (telemetry::RankMetrics& rm : telemetry::read_metrics_jsonl(mp)) {
      if (rm.rank != rank) continue;
      harvested_[rank].rank = rank;
      telemetry::merge_metrics(harvested_[rank], rm);
      got = true;
    }
  } catch (const std::exception&) {
    // No flush ever happened (SIGKILL before the first periodic flush):
    // nothing to harvest, the respawn re-counts its replayed work.
  }
  // A signal death never ran the exit-path dump, so whatever the
  // periodic flushes left is a truthful prefix, not the whole story.
  if (got && !flushed) harvested_[rank].partial = true;
  if (got && board_) board_->on_harvest(rank, harvested_[rank]);
  // Whatever was (or wasn't) flushed must not be double-read when the
  // respawned rank writes its own final stream.
  std::remove(mp.c_str());
  if (setup_.trace_on) {
    const std::string tp = rank_trace_path(setup_.workdir, rank);
    std::ifstream probe(tp);
    if (probe.good()) {
      const std::string moved = setup_.workdir + "/rank_" +
                                std::to_string(rank) + ".g" +
                                std::to_string(harvested_traces_.size()) +
                                ".trace.json";
      std::rename(tp.c_str(), moved.c_str());
      harvested_traces_.push_back(moved);
    }
  }
}

void Lifecycle::fail(const std::vector<liveness::EngineFailure>& fails,
                     int restarts) {
  clean_run_control_files(setup_.workdir);
  std::vector<RankFailure> failures;
  std::ostringstream msg;
  msg << "parallel run failed after " << restarts << " restart(s);";
  for (const liveness::EngineFailure& ef : fails) {
    RankFailure f;
    f.rank = ef.rank;
    f.wait_status = ef.status;
    f.detail = ef.hung ? "hung (heartbeat silence); " +
                             supervisor_detail::describe_status(ef.status)
                       : supervisor_detail::describe_status(ef.status);
    msg << " rank " << f.rank << ": " << f.detail << ';';
    failures.push_back(std::move(f));
  }
  throw ProcessRunError(msg.str(), std::move(failures));
}

void Lifecycle::fail_spawn(const launcher::SpawnError& err, int restarts) {
  clean_run_control_files(setup_.workdir);
  std::ostringstream msg;
  msg << "parallel run failed after " << restarts << " restart(s); rank "
      << err.rank << " on host " << err.host << ": spawn failed: "
      << err.what() << ';';
  RankFailure f;
  f.rank = err.rank;
  f.detail = std::string("spawn failed: ") + err.what();
  throw ProcessRunError(msg.str(), {std::move(f)});
}

void Lifecycle::join_taggers() {
  for (std::thread& t : taggers_)
    if (t.joinable()) t.join();
}

void Lifecycle::clean_run_control_files(const std::string& workdir) {
  liveness::remove_port_registries(workdir);
  std::remove((workdir + "/status.port").c_str());
  std::remove((workdir + "/cohort.spec").c_str());
}

}  // namespace cohort
}  // namespace subsonic
