#include "src/runtime/rebalancer.hpp"

#include <algorithm>
#include <limits>

#include "src/util/check.hpp"

namespace subsonic {

namespace {

/// max/mean over the positive-load ranks; 1.0 when fewer than two ranks
/// carry load (nothing to balance).
double imbalance(const std::vector<double>& load) {
  double sum = 0.0, mx = 0.0;
  int n = 0;
  for (double l : load) {
    if (l <= 0.0) continue;
    sum += l;
    mx = std::max(mx, l);
    ++n;
  }
  if (n < 2 || sum <= 0.0) return 1.0;
  return mx / (sum / n);
}

}  // namespace

RebalanceDecision propose_rebalance(const std::vector<int>& owner,
                                    const std::vector<BlockCost>& costs,
                                    int rank_count, double threshold) {
  SUBSONIC_REQUIRE(rank_count >= 1);
  SUBSONIC_REQUIRE(threshold >= 1.0);

  RebalanceDecision d;
  d.owner = owner;

  // Fold the measurements by current owner: the rank's speed is the work
  // it did per second of compute, its load the seconds it spent.
  std::vector<double> rank_time(rank_count, 0.0);
  std::vector<std::int64_t> rank_cells(rank_count, 0);
  for (const BlockCost& c : costs) {
    SUBSONIC_REQUIRE(c.block >= 0 &&
                     c.block < static_cast<int>(owner.size()));
    const int r = owner[c.block];
    SUBSONIC_REQUIRE_MSG(r >= 0 && r < rank_count,
                         "cost reported for an inactive block");
    rank_time[r] += c.t_calc_s;
    rank_cells[r] += c.cells;
  }

  d.imbalance_before = imbalance(rank_time);

  double speed_sum = 0.0;
  int speed_n = 0;
  d.rank_speed.assign(rank_count, 0.0);
  for (int r = 0; r < rank_count; ++r) {
    if (rank_time[r] > 0.0 && rank_cells[r] > 0) {
      d.rank_speed[r] = static_cast<double>(rank_cells[r]) / rank_time[r];
      speed_sum += d.rank_speed[r];
      ++speed_n;
    }
  }
  // Ranks we could not measure (no blocks, or zero-cost blocks) are
  // assumed average — they stay eligible to receive blocks.
  const double mean_speed = speed_n > 0 ? speed_sum / speed_n : 1.0;
  for (int r = 0; r < rank_count; ++r)
    if (d.rank_speed[r] <= 0.0) d.rank_speed[r] = mean_speed;

  if (d.imbalance_before < threshold) {
    d.imbalance_after = d.imbalance_before;
    return d;  // hysteresis: below threshold the map stands
  }

  // Greedy longest-processing-time: heaviest blocks first (cells desc,
  // id asc for determinism), each onto the rank whose predicted finish
  // time (load + w) / speed is smallest.  Ties keep the current owner —
  // minimal state movement — then the lower rank.
  std::vector<BlockCost> ordered = costs;
  std::sort(ordered.begin(), ordered.end(),
            [](const BlockCost& a, const BlockCost& b) {
              if (a.cells != b.cells) return a.cells > b.cells;
              return a.block < b.block;
            });

  std::vector<double> load(rank_count, 0.0);  // assigned cells per rank
  std::vector<int> proposed = owner;
  for (const BlockCost& c : ordered) {
    int best = -1;
    double best_t = std::numeric_limits<double>::infinity();
    const double w = static_cast<double>(std::max<std::int64_t>(c.cells, 1));
    for (int r = 0; r < rank_count; ++r) {
      const double t = (load[r] + w) / d.rank_speed[r];
      const bool better =
          t < best_t ||
          (t == best_t && best != owner[c.block] && r == owner[c.block]);
      if (better) {
        best = r;
        best_t = std::min(best_t, t);
      }
    }
    proposed[c.block] = best;
    load[best] += w;
  }

  // Every rank that owns blocks today keeps at least one: a rank starved
  // of blocks would idle yet still participate in every ghost barrier.
  for (int r = 0; r < rank_count; ++r) {
    const bool owns_now =
        std::find(owner.begin(), owner.end(), r) != owner.end();
    const bool owns_after =
        std::find(proposed.begin(), proposed.end(), r) != proposed.end();
    if (!owns_now || owns_after) continue;
    // Give it the lightest block of the most loaded rank.
    int give = -1;
    double give_t = -1.0;
    double give_w = 0.0;
    for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
      const int from = proposed[it->block];
      // Do not strip a rank down to zero blocks in the process.
      int from_count = 0;
      for (int p : proposed)
        if (p == from) ++from_count;
      if (from_count < 2) continue;
      const double t = load[from] / d.rank_speed[from];
      if (t > give_t) {
        give_t = t;
        give = it->block;
        give_w = static_cast<double>(std::max<std::int64_t>(it->cells, 1));
      }
    }
    SUBSONIC_CHECK(give >= 0);
    load[proposed[give]] -= give_w;
    proposed[give] = r;
    load[r] += give_w;
  }

  if (proposed == owner) {
    d.imbalance_after = d.imbalance_before;
    return d;  // the measured skew has no better placement
  }

  // Predicted per-rank compute time under the proposal.
  std::vector<double> predicted(rank_count, 0.0);
  for (const BlockCost& c : costs)
    predicted[proposed[c.block]] +=
        static_cast<double>(c.cells) / d.rank_speed[proposed[c.block]];
  d.imbalance_after = imbalance(predicted);

  d.rebalance = true;
  for (size_t b = 0; b < owner.size(); ++b)
    if (proposed[b] != owner[b])
      d.moves.push_back({static_cast<int>(b), owner[b], proposed[b]});
  d.owner = std::move(proposed);
  return d;
}

}  // namespace subsonic
