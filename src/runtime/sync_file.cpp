#include "src/runtime/sync_file.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/check.hpp"

namespace subsonic {

SyncFile::SyncFile(std::string path) : path_(std::move(path)) {
  SUBSONIC_REQUIRE(!path_.empty());
}

void SyncFile::announce(int rank, long step) const {
  // Open in append mode and take an exclusive flock for the write — the
  // paper's "file locking semaphores, and append mode".
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    throw std::runtime_error(std::string("sync file open: ") +
                             std::strerror(errno));
  if (::flock(fd, LOCK_EX) != 0) {
    ::close(fd);
    throw std::runtime_error("sync file lock failed");
  }
  char line[64];
  const int len = std::snprintf(line, sizeof line, "%d %ld\n", rank, step);
  SUBSONIC_CHECK(len > 0 && len < int(sizeof line));
  ssize_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, line + written, size_t(len - written));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::flock(fd, LOCK_UN);
      ::close(fd);
      throw std::runtime_error("sync file write failed");
    }
    written += n;
  }
  ::flock(fd, LOCK_UN);
  ::close(fd);
}

std::vector<std::pair<int, long>> SyncFile::read_all() const {
  std::vector<std::pair<int, long>> out;
  std::ifstream in(path_);
  int rank = 0;
  long step = 0;
  while (in >> rank >> step) out.emplace_back(rank, step);
  return out;
}

long SyncFile::sync_step(int expected) const {
  const auto records = read_all();
  if (static_cast<int>(records.size()) < expected) return -1;
  long max_step = 0;
  for (const auto& [rank, step] : records) max_step = std::max(max_step, step);
  return max_step + 1;
}

void SyncFile::clear() const { ::unlink(path_.c_str()); }

}  // namespace subsonic
