// The 3D entry points of the supervised process runtime — the paper's
// Figure 10/11 workload (section 7: (J x K x L) decompositions of grids
// from 10^3 to 44^3 per subregion) with the full 2D feature set:
// heartbeat-watchdog supervision with surgical per-rank restart,
// staggered epoch checkpoints, SUBSONIC_FAULTS injection, per-rank
// WorkerStats and run_summary.json (with the liveness audit trail).
// Implemented by the dimension-generic run_supervised template
// (supervisor.hpp).
#pragma once

#include <string>

#include "src/geometry/mask.hpp"
#include "src/runtime/supervisor.hpp"

namespace subsonic {

/// Forks one child per active subregion of the (jx x jy x jz)
/// decomposition of `mask`, runs `steps` integration steps with boundary
/// exchange over real TCP sockets, and writes "rank_<r>.dump" per
/// subregion into `workdir` (which must exist).  See run_supervised for
/// the full contract.
ProcessRunResult run_multiprocess3d(const Mask3D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int jz, int steps,
                                    const std::string& workdir,
                                    const ProcessRunOptions& options);

/// Convenience overload with default supervision: overlap scheduling,
/// env-driven faults, default restart budget and deadlines.
ProcessRunResult run_multiprocess3d(const Mask3D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int jz, int steps,
                                    const std::string& workdir,
                                    Scheduling sched = Scheduling::kOverlap,
                                    int threads = 0);

}  // namespace subsonic
