#include "src/runtime/supervisor.hpp"

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "src/comm/http_status.hpp"
#include "src/io/checkpoint.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/cohort_lifecycle.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/runtime/launcher.hpp"
#include "src/runtime/status_board.hpp"
#include "src/runtime/supervisor_util.hpp"
#include "src/telemetry/summary.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {

namespace {

using supervisor_detail::describe_status;
using supervisor_detail::parse_id_file;

int parse_rank_file(const std::string& name, const std::string& suffix) {
  return parse_id_file(name, "rank_", suffix);
}

/// Start-of-run hygiene beyond epoch::clear_run_state: removes *every*
/// rank telemetry stream (a previous run in this directory may have used
/// more ranks, or the other dimension — the aggregation below must only
/// ever see this run's streams), and every legacy rank_<r>.dump that
/// cannot belong to this run's geometry (other dimension, other
/// decomposition window, other method or ghost width, rank out of range).
/// Children restore legacy dumps blindly, so a stale one would abort the
/// cohort — or resume this run from another run's state.  Dumps that
/// *match* are kept: they are what makes repeated calls continue a run.
/// Corrupt-but-matching-name dumps are also kept, so a torn final dump
/// still fails loudly instead of silently restarting from scratch.
template <int Dim>
void clean_stale_artifacts(const std::string& workdir,
                           const typename DomainTraits<Dim>::Decomp& decomp,
                           Method method, int ghost) {
  using Traits = DomainTraits<Dim>;
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(workdir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) names.push_back(entry->d_name);
    ::closedir(dir);
  }
  for (const std::string& name : names) {
    if (parse_rank_file(name, ".metrics.jsonl") >= 0 ||
        name.find(".trace.json") != std::string::npos) {
      // ".trace.json" by substring: harvested partial traces of put-down
      // ranks carry a ".g<round>" infix (rank_0.g1.trace.json).
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    // Per-block dumps belong to the over-decomposed runtime; a monolithic
    // run in the same directory can never restore them.
    if (parse_id_file(name, "block_", ".dump") >= 0 &&
        name.find(".epoch_") == std::string::npos) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    const int rank = parse_rank_file(name, ".dump");
    if (rank < 0 || name.find(".epoch_") != std::string::npos) continue;
    if (rank >= decomp.rank_count()) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    try {
      const CheckpointInfo info = inspect_checkpoint(workdir + "/" + name);
      if (!Traits::box_matches(info, decomp.box(rank)) ||
          info.method != static_cast<int>(method) || info.ghost != ghost)
        std::remove((workdir + "/" + name).c_str());
    } catch (const std::exception&) {
      // Unreadable or torn: keep it and let the restore report it.
    }
  }
}

}  // namespace

template <int Dim>
ProcessRunResult run_supervised(const typename DomainTraits<Dim>::Mask& mask,
                                const FluidParams& params, Method method,
                                const GridShape& grid, int steps,
                                const std::string& workdir,
                                const ProcessRunOptions& options) {
  using Traits = DomainTraits<Dim>;
  if (options.block_side != 0)
    return run_supervised_blocked<Dim>(mask, params, method, grid, steps,
                                       workdir, options);
  SUBSONIC_REQUIRE_MSG(options.rebalance_interval == 0,
                       "rebalancing requires the blocked runtime "
                       "(options.block_side != 0)");
  params.validate();
  SUBSONIC_REQUIRE(steps >= 1);
  SUBSONIC_REQUIRE(options.checkpoint_interval >= 0);
  SUBSONIC_REQUIRE(options.max_restarts >= 0);
  SUBSONIC_REQUIRE(options.recv_deadline_ms >= 0);
  const typename Traits::Decomp decomp =
      Traits::make_decomposition(mask, grid);
  const auto active_list = active_ranks(decomp, mask);
  std::vector<bool> active(decomp.rank_count(), false);
  for (int r : active_list) active[r] = true;
  const int ghost = required_ghost(method, params.filter_eps > 0.0);

  const FaultPlan faults = options.faults.empty()
                               ? FaultPlan::from_env()
                               : FaultPlan::parse(options.faults);

  // Fresh run-control state per run: stale ports.g<N> registries or a
  // stale status.port from a crashed prior run point at dead listeners;
  // stale epoch dumps or a stale MANIFEST belong to some previous run's
  // step numbering.  Port registration itself now goes through the
  // in-memory rendezvous service, never the filesystem.
  cohort::Lifecycle::clean_run_control_files(workdir);
  epoch::clear_run_state(workdir);
  clean_stale_artifacts<Dim>(workdir, decomp, method, ghost);
  std::remove((workdir + "/trace.json").c_str());
  std::remove((workdir + "/run_summary.json").c_str());
  std::remove((workdir + "/supervisor.metrics.jsonl").c_str());

  // The supervisor's own session: every child inherits its trace origin,
  // so the merged trace.json has one consistent timeline across ranks.
  const bool trace_on =
      options.trace > 0 ||
      (options.trace < 0 && telemetry::trace_enabled_from_env());
  telemetry::SessionConfig sup_cfg;
  sup_cfg.trace = trace_on;
  telemetry::Session supervisor(sup_cfg);

  // Continuation runs resume from the legacy per-rank dumps; probe the
  // step they carry so epochs and kill-step offsets count from there.
  long start_step = 0;
  if (!active_list.empty()) {
    try {
      const CheckpointInfo info = inspect_checkpoint(
          cohort::legacy_dump_path(workdir, active_list[0]));
      start_step = info.step;
    } catch (const std::exception&) {
      start_step = 0;  // absent or unreadable: fresh run
    }
  }
  const long target_step = start_step + steps;

  ProcessRunResult result;
  result.processes = static_cast<int>(active_list.size());
  result.final_step = target_step;
  if (active_list.empty()) return result;

  const int flush_interval = supervisor_detail::resolve_metrics_flush_interval(
      options.metrics_flush_interval);

  // Cohort lifecycle: launcher selection, the rendezvous service the
  // ranks coordinate through, stderr tagging, harvests, failure reports.
  cohort::Lifecycle::Setup lcs;
  lcs.workdir = workdir;
  lcs.trace_on = trace_on;
  lcs.dim = Dim;
  lcs.blocked = false;
  lcs.launcher = options.launcher;
  lcs.faults_spec = options.faults;
  lcs.faults = &faults;
  lcs.liveness = &options.liveness;
  cohort::Lifecycle lc(std::move(lcs));
  if (lc.wants_spec()) {
    cohort::CohortSpec cs;
    cs.set_mask(mask);
    cs.method = method;
    cs.grid = grid;
    cs.params = params;
    lc.write_spec(cs);
  }

  // Live introspection plane: the board collects what the supervision
  // loop learns (frames, liveness events, harvests) and the endpoint
  // serves it.  Both are absent unless a status port was requested, and
  // neither can touch simulation state either way.
  std::unique_ptr<liveness::StatusBoard> board;
  std::unique_ptr<HttpStatusServer> http;
  const int want_port =
      supervisor_detail::resolve_status_port(options.status_port);
  if (want_port >= 0) {
    board = std::make_unique<liveness::StatusBoard>();
    liveness::StatusBoard::Config bc;
    bc.workdir = workdir;
    bc.ranks = active_list;
    for (int rank : active_list)
      bc.fluid_cells.push_back(static_cast<double>(
          mask.count_box(decomp.box(rank), NodeType::kFluid)));
    bc.start_step = start_step;
    bc.target_step = target_step;
    bc.dims = Dim;
    bc.supervisor = &supervisor;
    bc.hosts.assign(active_list.size(), lc.host_tag());
    bc.launcher = lc.launcher_name();
    board->configure(std::move(bc));
    lc.set_board(board.get());
    http = std::make_unique<HttpStatusServer>(
        want_port, [b = board.get()](const std::string& path,
                                     std::string* body, std::string* ct) {
          return b->handle(path, body, ct);
        });
    std::ofstream pf(workdir + "/status.port", std::ios::trunc);
    pf << http->port() << "\n";
  }

  int generation = 0;
  long committed_epoch = -1;  // newest MANIFEST-committed epoch

  // Verify-and-commit: an epoch becomes restorable only once every
  // active rank's dump for it exists, passes its CRC, and agrees on the
  // step counter.  Called from the supervision loop (cheap when the next
  // epoch is not complete yet) and once after any cohort ends.
  auto poll_epochs = [&]() {
    if (options.checkpoint_interval <= 0) return;
    for (;;) {
      const long e = committed_epoch + 1;
      long step = -1;
      bool complete = true;
      for (int rank : active_list) {
        try {
          const CheckpointInfo info =
              inspect_checkpoint(epoch::dump_path(workdir, rank, e));
          if (step < 0) step = info.step;
          complete = complete && info.step == step;
        } catch (const std::exception&) {
          complete = false;  // missing, torn, or corrupt: not this epoch
        }
        if (!complete) break;
      }
      if (!complete) return;
      epoch::Manifest m;
      m.epoch = e;
      m.step = step;
      m.ranks = active_list;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.commit", "ckpt",
                                   step);
        epoch::commit_manifest(workdir, m);
      }
      committed_epoch = e;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.gc", "ckpt", step);
        epoch::gc_epochs(workdir, active_list, e);
      }
    }
  };

  auto spawn_child = [&](int rank, int gen, long restore_epoch, int hb_fd,
                         int ctl_fd,
                         const std::vector<int>& close_in_child) -> pid_t {
    size_t stagger = 0;
    for (size_t i = 0; i < active_list.size(); ++i)
      if (active_list[i] == rank) stagger = i;
    cohort::ChildConfig cfg;
    cfg.rank = rank;
    cfg.generation = gen;
    cfg.target_step = target_step;
    cfg.start_step = start_step;
    cfg.restore_epoch = restore_epoch;
    cfg.checkpoint_interval = options.checkpoint_interval;
    cfg.stagger_index = static_cast<int>(stagger);
    cfg.recv_deadline_ms = options.recv_deadline_ms;
    cfg.sched = options.sched;
    cfg.threads = options.threads;
    cfg.trace = trace_on;
    cfg.origin_ns = supervisor.origin_ns();
    cfg.heartbeat_fd = hb_fd;
    cfg.control_fd = ctl_fd;
    cfg.beacon_interval_ms = options.liveness.beacon_interval_ms;
    cfg.metrics_flush_interval = flush_interval;
    return lc.spawn(rank, std::move(cfg), close_in_child,
                    [&](const cohort::ChildConfig& final_cfg) {
                      cohort::child_main<Dim>(mask, params, method, decomp,
                                              active, final_cfg, workdir,
                                              lc.registry(),
                                              faults);  // never returns
                    });
  };

  liveness::EngineHooks hooks;
  hooks.spawn = spawn_child;
  hooks.poll_epochs = poll_epochs;
  hooks.committed_epoch = [&]() { return committed_epoch; };
  hooks.begin_generation = [&](int gen, long epoch) {
    // Fresh per-round registrations; the previous round's entries point
    // at listeners that are dead or about to be torn down.
    lc.begin_generation(gen);
    if (epoch < 0 && gen > 0 && start_step == 0) {
      // Epoch-less recovery replays the run from scratch: a rank that
      // already finished rewrote its legacy dump at the target step, and
      // restoring that mid-replay would desynchronize the cohort.  Fresh
      // runs only — a continuation's legacy dumps ARE the starting state.
      for (int rank : active_list) {
        const std::string dump = cohort::legacy_dump_path(workdir, rank);
        try {
          if (inspect_checkpoint(dump).step != 0) std::remove(dump.c_str());
        } catch (const std::exception&) {
          // Absent or torn: the restore path handles it.
        }
      }
    }
  };
  hooks.on_rank_down = [&](int rank, bool flushed) {
    lc.harvest_rank(rank, flushed);
  };
  hooks.host_of = [&](int) { return lc.host_tag(); };
  if (lc.socket_channels())
    hooks.adopt_channels = [&](int rank) { return lc.adopt_channels(rank); };
  if (board) {
    hooks.on_metrics_frame = [b = board.get()](
                                 const liveness::MetricsFrame& mf) {
      b->on_frame(mf);
    };
    hooks.on_liveness = [b = board.get()](
                            const telemetry::LivenessRecord& lr) {
      b->on_liveness(lr);
    };
  }
  hooks.fail = [&](const std::vector<liveness::EngineFailure>& fails) {
    lc.fail(fails, result.restarts);
  };

  {
    liveness::CohortEngine engine(active_list, options.liveness,
                                  options.max_restarts, std::move(hooks),
                                  &supervisor, &result.liveness,
                                  &result.restarts, &result.forks);
    try {
      engine.run(&generation, -1);
    } catch (const launcher::SpawnError& e) {
      lc.join_taggers();
      lc.fail_spawn(e, result.restarts);
    } catch (...) {
      lc.join_taggers();
      throw;
    }
  }
  lc.join_taggers();
  poll_epochs();
  std::remove((workdir + "/cohort.spec").c_str());
  if (board) board->set_done(true);
  result.committed_epoch = committed_epoch;

  // Read the common step counter back from any dump.
  {
    typename Traits::Domain probe(mask, decomp.box(active_list[0]), params,
                                  method, ghost);
    restore_domain(probe, cohort::legacy_dump_path(workdir, active_list[0]));
    result.final_step = probe.step();
  }

  // Aggregate the telemetry every rank streamed to disk: reconstruct the
  // per-rank WorkerStats for the caller, and write run_summary.json with
  // the measured T_calc / T_com next to the paper model's predicted f.
  std::vector<telemetry::RankMetrics> rank_metrics;
  rank_metrics.reserve(active_list.size());
  for (int rank : active_list) {
    // Whole-run view: whatever was harvested from this rank's dead
    // predecessors, plus the final process's stream.
    telemetry::RankMetrics total;
    total.rank = rank;
    const auto hit = lc.harvested().find(rank);
    if (hit != lc.harvested().end())
      telemetry::merge_metrics(total, hit->second);
    try {
      for (telemetry::RankMetrics& rm : telemetry::read_metrics_jsonl(
               cohort::metrics_path(workdir, rank))) {
        if (rm.rank != rank) continue;
        telemetry::merge_metrics(total, rm);
      }
    } catch (const std::exception&) {
      // A missing or unreadable stream degrades that rank to whatever was
      // harvested (or zeros); the simulation result itself is already
      // safely on disk.
    }
    rank_metrics.push_back(std::move(total));
  }
  result.rank_stats.reserve(rank_metrics.size());
  for (const telemetry::RankMetrics& rm : rank_metrics) {
    WorkerStats ws;
    ws.compute_s = rm.t_calc();
    ws.comm_s = rm.t_com();
    result.rank_stats.push_back(ws);
  }

  telemetry::RunModelInputs model;
  model.dims = Dim;
  model.processes = static_cast<int>(active_list.size());
  double owned_nodes = 0;
  for (int rank : active_list)
    owned_nodes += static_cast<double>(decomp.box(rank).count());
  model.nodes_per_rank = owned_nodes / static_cast<double>(active_list.size());
  model.rank_weights.reserve(active_list.size());
  for (int rank : active_list)
    model.rank_weights.push_back(static_cast<double>(
        mask.count_box(decomp.box(rank), NodeType::kFluid)));
  // Doubles shipped per boundary node per step, from the schedule actually
  // run: each exchange phase ships |fields| doubles per node per ghost
  // layer.
  double doubles_per_node = 0;
  for (const Phase& phase : Traits::make_schedule(method))
    if (phase.kind == Phase::Kind::kExchange)
      doubles_per_node += static_cast<double>(phase.fields.size());
  model.comm_doubles_per_node = doubles_per_node * ghost;

  telemetry::RunSummary summary =
      telemetry::summarize_run(rank_metrics, model, result.restarts);
  result.rank_metrics = std::move(rank_metrics);
  summary.liveness = result.liveness;
  result.summary_path = workdir + "/run_summary.json";
  telemetry::write_run_summary(summary, result.summary_path);
  supervisor.write_metrics_jsonl(workdir + "/supervisor.metrics.jsonl");
  if (trace_on) {
    std::vector<std::string> traces = lc.harvested_traces();
    traces.reserve(traces.size() + active_list.size());
    for (int rank : active_list)
      traces.push_back(cohort::rank_trace_path(workdir, rank));
    telemetry::merge_chrome_traces(traces, workdir + "/trace.json");
  }
  if (http) {
    http.reset();  // stop serving before the port file disappears
    std::remove((workdir + "/status.port").c_str());
  }
  return result;
}

template ProcessRunResult run_supervised<2>(const Mask2D&, const FluidParams&,
                                            Method, const GridShape&, int,
                                            const std::string&,
                                            const ProcessRunOptions&);
template ProcessRunResult run_supervised<3>(const Mask3D&, const FluidParams&,
                                            Method, const GridShape&, int,
                                            const std::string&,
                                            const ProcessRunOptions&);

}  // namespace subsonic
