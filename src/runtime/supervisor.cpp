#include "src/runtime/supervisor.hpp"

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "src/io/checkpoint.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/runtime/supervisor_util.hpp"
#include "src/telemetry/summary.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {

namespace {

using supervisor_detail::describe_status;
using supervisor_detail::parse_id_file;

int parse_rank_file(const std::string& name, const std::string& suffix) {
  return parse_id_file(name, "rank_", suffix);
}

/// Start-of-run hygiene beyond epoch::clear_run_state: removes *every*
/// rank telemetry stream (a previous run in this directory may have used
/// more ranks, or the other dimension — the aggregation below must only
/// ever see this run's streams), and every legacy rank_<r>.dump that
/// cannot belong to this run's geometry (other dimension, other
/// decomposition window, other method or ghost width, rank out of range).
/// Children restore legacy dumps blindly, so a stale one would abort the
/// cohort — or resume this run from another run's state.  Dumps that
/// *match* are kept: they are what makes repeated calls continue a run.
/// Corrupt-but-matching-name dumps are also kept, so a torn final dump
/// still fails loudly instead of silently restarting from scratch.
template <int Dim>
void clean_stale_artifacts(const std::string& workdir,
                           const typename DomainTraits<Dim>::Decomp& decomp,
                           Method method, int ghost) {
  using Traits = DomainTraits<Dim>;
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(workdir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) names.push_back(entry->d_name);
    ::closedir(dir);
  }
  for (const std::string& name : names) {
    if (parse_rank_file(name, ".metrics.jsonl") >= 0 ||
        parse_rank_file(name, ".trace.json") >= 0) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    // Per-block dumps belong to the over-decomposed runtime; a monolithic
    // run in the same directory can never restore them.
    if (parse_id_file(name, "block_", ".dump") >= 0 &&
        name.find(".epoch_") == std::string::npos) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    const int rank = parse_rank_file(name, ".dump");
    if (rank < 0 || name.find(".epoch_") != std::string::npos) continue;
    if (rank >= decomp.rank_count()) {
      std::remove((workdir + "/" + name).c_str());
      continue;
    }
    try {
      const CheckpointInfo info = inspect_checkpoint(workdir + "/" + name);
      if (!Traits::box_matches(info, decomp.box(rank)) ||
          info.method != static_cast<int>(method) || info.ghost != ghost)
        std::remove((workdir + "/" + name).c_str());
    } catch (const std::exception&) {
      // Unreadable or torn: keep it and let the restore report it.
    }
  }
}

}  // namespace

template <int Dim>
ProcessRunResult run_supervised(const typename DomainTraits<Dim>::Mask& mask,
                                const FluidParams& params, Method method,
                                const GridShape& grid, int steps,
                                const std::string& workdir,
                                const ProcessRunOptions& options) {
  using Traits = DomainTraits<Dim>;
  if (options.block_side != 0)
    return run_supervised_blocked<Dim>(mask, params, method, grid, steps,
                                       workdir, options);
  SUBSONIC_REQUIRE_MSG(options.rebalance_interval == 0,
                       "rebalancing requires the blocked runtime "
                       "(options.block_side != 0)");
  params.validate();
  SUBSONIC_REQUIRE(steps >= 1);
  SUBSONIC_REQUIRE(options.checkpoint_interval >= 0);
  SUBSONIC_REQUIRE(options.max_restarts >= 0);
  SUBSONIC_REQUIRE(options.recv_deadline_ms >= 0);
  const typename Traits::Decomp decomp =
      Traits::make_decomposition(mask, grid);
  const auto active_list = active_ranks(decomp, mask);
  std::vector<bool> active(decomp.rank_count(), false);
  for (int r : active_list) active[r] = true;
  const int ghost = required_ghost(method, params.filter_eps > 0.0);

  const FaultPlan faults = options.faults.empty()
                               ? FaultPlan::from_env()
                               : FaultPlan::parse(options.faults);

  // Fresh registry and fresh epoch state per run: ports are ephemeral and
  // stale entries would point at dead listeners; stale epoch dumps or a
  // stale MANIFEST belong to some previous run's step numbering.
  const std::string registry = workdir + "/ports";
  std::remove(registry.c_str());
  epoch::clear_run_state(workdir);
  clean_stale_artifacts<Dim>(workdir, decomp, method, ghost);
  std::remove((workdir + "/trace.json").c_str());
  std::remove((workdir + "/run_summary.json").c_str());
  std::remove((workdir + "/supervisor.metrics.jsonl").c_str());

  // The supervisor's own session: every child inherits its trace origin,
  // so the merged trace.json has one consistent timeline across ranks.
  const bool trace_on =
      options.trace > 0 ||
      (options.trace < 0 && telemetry::trace_enabled_from_env());
  telemetry::SessionConfig sup_cfg;
  sup_cfg.trace = trace_on;
  telemetry::Session supervisor(sup_cfg);

  // Continuation runs resume from the legacy per-rank dumps; probe the
  // step they carry so epochs and kill-step offsets count from there.
  long start_step = 0;
  if (!active_list.empty()) {
    try {
      const CheckpointInfo info = inspect_checkpoint(
          cohort::legacy_dump_path(workdir, active_list[0]));
      start_step = info.step;
    } catch (const std::exception&) {
      start_step = 0;  // absent or unreadable: fresh run
    }
  }
  const long target_step = start_step + steps;

  ProcessRunResult result;
  result.processes = static_cast<int>(active_list.size());
  result.final_step = target_step;
  if (active_list.empty()) return result;

  int generation = 0;
  long committed_epoch = -1;  // newest MANIFEST-committed epoch

  // Verify-and-commit: an epoch becomes restorable only once every
  // active rank's dump for it exists, passes its CRC, and agrees on the
  // step counter.  Called from the supervision loop (cheap when the next
  // epoch is not complete yet) and once after any cohort ends.
  auto poll_epochs = [&]() {
    if (options.checkpoint_interval <= 0) return;
    for (;;) {
      const long e = committed_epoch + 1;
      long step = -1;
      bool complete = true;
      for (int rank : active_list) {
        try {
          const CheckpointInfo info =
              inspect_checkpoint(epoch::dump_path(workdir, rank, e));
          if (step < 0) step = info.step;
          complete = complete && info.step == step;
        } catch (const std::exception&) {
          complete = false;  // missing, torn, or corrupt: not this epoch
        }
        if (!complete) break;
      }
      if (!complete) return;
      epoch::Manifest m;
      m.epoch = e;
      m.step = step;
      m.ranks = active_list;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.commit", "ckpt",
                                   step);
        epoch::commit_manifest(workdir, m);
      }
      committed_epoch = e;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.gc", "ckpt", step);
        epoch::gc_epochs(workdir, active_list, e);
      }
    }
  };

  auto spawn_cohort = [&](long restore_epoch) -> cohort::Cohort {
    std::remove(registry.c_str());
    std::fflush(nullptr);  // do not duplicate buffered output into children
    cohort::Cohort cohort;
    cohort.pids.reserve(active_list.size());
    for (size_t i = 0; i < active_list.size(); ++i) {
      cohort::ChildConfig cfg;
      cfg.rank = active_list[i];
      cfg.generation = generation;
      cfg.target_step = target_step;
      cfg.start_step = start_step;
      cfg.restore_epoch = restore_epoch;
      cfg.checkpoint_interval = options.checkpoint_interval;
      cfg.stagger_index = static_cast<int>(i);
      cfg.recv_deadline_ms = options.recv_deadline_ms;
      cfg.sched = options.sched;
      cfg.threads = options.threads;
      cfg.trace = trace_on;
      cfg.origin_ns = supervisor.origin_ns();
      int err_pipe[2];
      SUBSONIC_REQUIRE_MSG(::pipe(err_pipe) == 0, "pipe failed");
      const pid_t pid = ::fork();
      SUBSONIC_REQUIRE_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        // Route the child's stderr through the tagging pipe so the parent
        // can prefix every line with the rank.
        ::dup2(err_pipe[1], 2);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        cohort::child_main<Dim>(mask, params, method, decomp, active, cfg,
                                workdir, registry, faults);  // never returns
      }
      ::close(err_pipe[1]);
      cohort.taggers.emplace_back(cohort::tag_child_stderr, err_pipe[0],
                                  active_list[i]);
      cohort.pids.push_back(pid);
    }
    cohort.reaped.assign(cohort.pids.size(), false);
    cohort.status.assign(cohort.pids.size(), 0);
    return cohort;
  };

  // Tagger threads hit EOF once their child is gone; join them only after
  // every child in the cohort is reaped (both outcomes).
  auto join_taggers = [](cohort::Cohort& cohort) {
    for (std::thread& t : cohort.taggers)
      if (t.joinable()) t.join();
  };

  for (;;) {
    cohort::Cohort cohort = spawn_cohort(generation == 0 ? -1
                                                         : committed_epoch);

    // Supervise: reap out of order with WNOHANG so a crash in any rank is
    // seen immediately, no matter where it falls in pid order.
    bool failure = false;
    size_t live = cohort.pids.size();
    while (live > 0 && !failure) {
      bool progressed = false;
      for (size_t i = 0; i < cohort.pids.size(); ++i) {
        if (cohort.reaped[i]) continue;
        int status = 0;
        const pid_t r = ::waitpid(cohort.pids[i], &status, WNOHANG);
        if (r == cohort.pids[i]) {
          cohort.reaped[i] = true;
          cohort.status[i] = status;
          --live;
          progressed = true;
          if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            failure = true;
        }
      }
      poll_epochs();
      if (!progressed && !failure && live > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    if (failure) {
      // First casualty seen: kill the whole cohort.  Survivors may be
      // wedged waiting on the dead rank (until their recv deadline), so
      // never wait for them to exit on their own.
      for (size_t i = 0; i < cohort.pids.size(); ++i)
        if (!cohort.reaped[i]) ::kill(cohort.pids[i], SIGKILL);
      for (size_t i = 0; i < cohort.pids.size(); ++i) {
        if (cohort.reaped[i]) continue;
        int status = 0;
        if (::waitpid(cohort.pids[i], &status, 0) == cohort.pids[i]) {
          cohort.reaped[i] = true;
          cohort.status[i] = status;
        }
      }
      join_taggers(cohort);
      // Dumps flushed just before the crash may complete another epoch.
      poll_epochs();

      if (result.restarts >= options.max_restarts) {
        std::remove(registry.c_str());
        std::vector<RankFailure> failures;
        std::ostringstream msg;
        msg << "parallel run failed after " << result.restarts
            << " restart(s);";
        for (size_t i = 0; i < cohort.pids.size(); ++i) {
          const int status = cohort.status[i];
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
          RankFailure f;
          f.rank = active_list[i];
          f.wait_status = status;
          f.detail = describe_status(status);
          msg << " rank " << f.rank << ": " << f.detail << ';';
          failures.push_back(std::move(f));
        }
        throw ProcessRunError(msg.str(), std::move(failures));
      }
      ++result.restarts;
      ++generation;
      supervisor.metrics().counter(-1, "restart.count").add();
      continue;  // respawn from the newest committed epoch (or scratch)
    }

    // Clean finish.
    join_taggers(cohort);
    poll_epochs();
    break;
  }
  std::remove(registry.c_str());
  result.committed_epoch = committed_epoch;

  // Read the common step counter back from any dump.
  {
    typename Traits::Domain probe(mask, decomp.box(active_list[0]), params,
                                  method, ghost);
    restore_domain(probe, cohort::legacy_dump_path(workdir, active_list[0]));
    result.final_step = probe.step();
  }

  // Aggregate the telemetry every rank streamed to disk: reconstruct the
  // per-rank WorkerStats for the caller, and write run_summary.json with
  // the measured T_calc / T_com next to the paper model's predicted f.
  std::vector<telemetry::RankMetrics> rank_metrics;
  rank_metrics.reserve(active_list.size());
  for (int rank : active_list) {
    std::vector<telemetry::RankMetrics> parsed;
    try {
      parsed =
          telemetry::read_metrics_jsonl(cohort::metrics_path(workdir, rank));
    } catch (const std::exception&) {
      // A missing or unreadable stream degrades that rank to zeros; the
      // simulation result itself is already safely on disk.
    }
    bool found = false;
    for (telemetry::RankMetrics& rm : parsed) {
      if (rm.rank != rank) continue;
      rank_metrics.push_back(std::move(rm));
      found = true;
      break;
    }
    if (!found) {
      telemetry::RankMetrics empty;
      empty.rank = rank;
      rank_metrics.push_back(std::move(empty));
    }
  }
  result.rank_stats.reserve(rank_metrics.size());
  for (const telemetry::RankMetrics& rm : rank_metrics) {
    WorkerStats ws;
    ws.compute_s = rm.t_calc();
    ws.comm_s = rm.t_com();
    result.rank_stats.push_back(ws);
  }

  telemetry::RunModelInputs model;
  model.dims = Dim;
  model.processes = static_cast<int>(active_list.size());
  double owned_nodes = 0;
  for (int rank : active_list)
    owned_nodes += static_cast<double>(decomp.box(rank).count());
  model.nodes_per_rank = owned_nodes / static_cast<double>(active_list.size());
  model.rank_weights.reserve(active_list.size());
  for (int rank : active_list)
    model.rank_weights.push_back(static_cast<double>(
        mask.count_box(decomp.box(rank), NodeType::kFluid)));
  // Doubles shipped per boundary node per step, from the schedule actually
  // run: each exchange phase ships |fields| doubles per node per ghost
  // layer.
  double doubles_per_node = 0;
  for (const Phase& phase : Traits::make_schedule(method))
    if (phase.kind == Phase::Kind::kExchange)
      doubles_per_node += static_cast<double>(phase.fields.size());
  model.comm_doubles_per_node = doubles_per_node * ghost;

  const telemetry::RunSummary summary =
      telemetry::summarize_run(rank_metrics, model, result.restarts);
  result.summary_path = workdir + "/run_summary.json";
  telemetry::write_run_summary(summary, result.summary_path);
  supervisor.write_metrics_jsonl(workdir + "/supervisor.metrics.jsonl");
  if (trace_on) {
    std::vector<std::string> traces;
    traces.reserve(active_list.size());
    for (int rank : active_list)
      traces.push_back(cohort::rank_trace_path(workdir, rank));
    telemetry::merge_chrome_traces(traces, workdir + "/trace.json");
  }
  return result;
}

template ProcessRunResult run_supervised<2>(const Mask2D&, const FluidParams&,
                                            Method, const GridShape&, int,
                                            const std::string&,
                                            const ProcessRunOptions&);
template ProcessRunResult run_supervised<3>(const Mask3D&, const FluidParams&,
                                            Method, const GridShape&, int,
                                            const std::string&,
                                            const ProcessRunOptions&);

}  // namespace subsonic
