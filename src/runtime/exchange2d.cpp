#include "src/runtime/exchange2d.hpp"

#include "src/util/check.hpp"

namespace subsonic {

std::vector<LinkPlan2D> make_link_plans2d(const Decomposition2D& d, int rank,
                                          int ghost, bool periodic_x,
                                          bool periodic_y,
                                          const std::vector<bool>& active) {
  SUBSONIC_REQUIRE(ghost >= 1);
  const Box2 mine = d.box(rank);
  const int ci = d.coord_x(rank);
  const int cj = d.coord_y(rank);
  const Extents2 ge = d.global();

  std::vector<LinkPlan2D> plans;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      int ni = ci + dx;
      int nj = cj + dy;
      // Shift of the neighbour's box into this rank's frame when the link
      // wraps around a periodic axis.
      int shift_x = 0, shift_y = 0;
      if (ni < 0) {
        if (!periodic_x) continue;
        ni += d.jx();
        shift_x = -ge.nx;
      } else if (ni >= d.jx()) {
        if (!periodic_x) continue;
        ni -= d.jx();
        shift_x = ge.nx;
      }
      if (nj < 0) {
        if (!periodic_y) continue;
        nj += d.jy();
        shift_y = -ge.ny;
      } else if (nj >= d.jy()) {
        if (!periodic_y) continue;
        nj -= d.jy();
        shift_y = ge.ny;
      }
      const int peer = d.rank_of(ni, nj);
      if (!active.empty() && !active[peer]) continue;

      Box2 peer_box = d.box(peer);
      peer_box = Box2{peer_box.x0 + shift_x, peer_box.y0 + shift_y,
                      peer_box.x1 + shift_x, peer_box.y1 + shift_y};

      // What we send: our interior that lies inside the peer's padding.
      const Box2 send_g = mine.intersect(peer_box.grown(ghost));
      // What we receive: our padding covered by the peer's interior.
      const Box2 recv_g = mine.grown(ghost).intersect(peer_box);
      if (send_g.empty() || recv_g.empty()) continue;
      SUBSONIC_CHECK(send_g.count() == recv_g.count());

      LinkPlan2D plan;
      plan.peer = peer;
      plan.dir = (dy + 1) * 3 + (dx + 1);
      plan.peer_dir = (-dy + 1) * 3 + (-dx + 1);
      plan.send_box = Box2{send_g.x0 - mine.x0, send_g.y0 - mine.y0,
                           send_g.x1 - mine.x0, send_g.y1 - mine.y0};
      plan.recv_box = Box2{recv_g.x0 - mine.x0, recv_g.y0 - mine.y0,
                           recv_g.x1 - mine.x0, recv_g.y1 - mine.y0};
      plans.push_back(plan);
    }
  }
  return plans;
}

std::vector<double> pack2d(const Domain2D& dom,
                           const std::vector<FieldId>& fields, Box2 box) {
  std::vector<double> payload;
  payload.reserve(static_cast<size_t>(box.count()) * fields.size());
  for (FieldId id : fields) {
    const PaddedField2D<double>& u = dom.field(id);
    for (int y = box.y0; y < box.y1; ++y)
      for (int x = box.x0; x < box.x1; ++x) payload.push_back(u(x, y));
  }
  return payload;
}

void unpack2d(Domain2D& dom, const std::vector<FieldId>& fields, Box2 box,
              const std::vector<double>& payload) {
  SUBSONIC_REQUIRE(payload.size() ==
                   static_cast<size_t>(box.count()) * fields.size());
  size_t k = 0;
  for (FieldId id : fields) {
    PaddedField2D<double>& u = dom.field(id);
    for (int y = box.y0; y < box.y1; ++y)
      for (int x = box.x0; x < box.x1; ++x) u(x, y) = payload[k++];
  }
}

}  // namespace subsonic
