// Telemetry-driven block re-assignment (ROADMAP item 2).  The supervisor
// measures per-block compute time ("compute.block_<b>" timers) over a
// rebalance interval, infers each rank's effective speed from the work it
// performed per second, and — when the measured per-rank compute times are
// imbalanced past a hysteresis threshold — proposes a new owner map by
// greedy longest-processing-time placement of blocks onto the speed-scaled
// ranks.  The proposal is pure decision logic: applying it is the
// supervisor's segment restart, which moves block state through the
// owner-agnostic per-block checkpoint dumps.
#pragma once

#include <cstdint>
#include <vector>

namespace subsonic {

/// Measured cost of one block over the last rebalance interval.
struct BlockCost {
  int block = -1;
  double t_calc_s = 0.0;   ///< summed "compute.block_<b>" time
  std::int64_t cells = 0;  ///< interior fluid-capable cells (work proxy)
};

/// One block changing hands.
struct BlockMove {
  int block = -1;
  int from = -1;
  int to = -1;
};

struct RebalanceDecision {
  /// False when the measured imbalance sits below the threshold (or the
  /// proposal would not move anything); `owner` then equals the input map.
  bool rebalance = false;
  std::vector<int> owner;        ///< proposed block -> rank map
  std::vector<BlockMove> moves;  ///< blocks whose owner changed
  /// Inferred cells-per-second of each rank; ranks with no measured
  /// compute time get the mean speed.
  std::vector<double> rank_speed;
  /// max/mean of the measured per-rank compute times (1 = balanced).
  double imbalance_before = 0.0;
  /// max/mean of the *predicted* per-rank compute times under the
  /// proposed map, using the inferred speeds.
  double imbalance_after = 0.0;
};

/// Proposes a block->rank re-assignment from measured per-block costs.
/// `owner` is the current map (-1 entries are inactive blocks and stay
/// -1); `costs` must cover every active block.  No re-assignment is
/// proposed while imbalance_before < `threshold` (hysteresis — small
/// timing noise must not cause churn), and every rank that currently owns
/// a block keeps at least one.
RebalanceDecision propose_rebalance(const std::vector<int>& owner,
                                    const std::vector<BlockCost>& costs,
                                    int rank_count, double threshold);

}  // namespace subsonic
