#include "src/runtime/serial2d.hpp"

#include "src/solver/lbm2d.hpp"

namespace subsonic {

SerialDriver2D::SerialDriver2D(const Mask2D& mask, const FluidParams& params,
                               Method method, int threads)
    : schedule_(make_schedule2d(method)),
      domain_(mask, full_box(mask.extents()), params, method,
              required_ghost(method, params.filter_eps > 0.0), threads),
      telemetry_(std::make_unique<telemetry::Session>(
          telemetry::Session::from_env())) {
  full_sync();
}

void SerialDriver2D::fill_periodic(PaddedField2D<double>& u) {
  const FluidParams& p = domain_.params();
  const int g = domain_.ghost();
  const int nx = domain_.nx();
  const int ny = domain_.ny();
  if (p.periodic_x) {
    // Wrap columns first, interior rows only; the y wrap below completes
    // the corners by copying whole rows including the x padding.
    for (int y = 0; y < ny; ++y)
      for (int k = 1; k <= g; ++k) {
        u(-k, y) = u(nx - k, y);
        u(nx - 1 + k, y) = u(k - 1, y);
      }
  }
  if (p.periodic_y) {
    for (int k = 1; k <= g; ++k)
      for (int x = -g; x < nx + g; ++x) {
        u(x, -k) = u(x, ny - k);
        u(x, ny - 1 + k) = u(x, k - 1);
      }
  }
}

void SerialDriver2D::full_sync() {
  fill_periodic(domain_.rho());
  fill_periodic(domain_.vx());
  fill_periodic(domain_.vy());
  for (int i = 0; i < domain_.q(); ++i) fill_periodic(domain_.f(i));
}

void SerialDriver2D::reinitialize() {
  if (domain_.method() == Method::kLatticeBoltzmann)
    lbm2d::set_equilibrium_both(domain_);
  full_sync();
}

void SerialDriver2D::run(int n) {
  telemetry::Session* const tel = telemetry_.get();
  for (int s = 0; s < n; ++s) {
    const long step = domain_.step();
    for (const Phase& phase : schedule_) {
      if (phase.kind == Phase::Kind::kCompute) {
        telemetry::ScopedSpan span(tel, 0, compute_phase_name(phase.compute),
                                   "compute", step);
        run_compute2d(domain_, phase.compute);
      } else {
        telemetry::ScopedSpan span(tel, 0, "comm.periodic_wrap", "comm",
                                   step);
        for (FieldId id : phase.fields) fill_periodic(domain_.field(id));
      }
    }
    domain_.set_step(step + 1);
    tel->metrics().counter(0, "steps").add();
  }
}

}  // namespace subsonic
