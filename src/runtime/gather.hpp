// The process runtime's gather surface: reconstruct the full macroscopic
// fields from the per-rank dump files a supervised run leaves behind —
// "these files contain all the information that is needed" (paper section
// 4.1), so the dumps double as the result-gathering mechanism and no
// driver or tool needs per-dimension I/O code.  Works on the final
// rank_<r>.dump files (epoch == -1) or on any MANIFEST-committed epoch's
// rank_<r>.epoch_<e>.dump files, in both dimensions.
#pragma once

#include <string>

#include "src/geometry/mask.hpp"
#include "src/grid/padded_field.hpp"
#include "src/solver/params.hpp"

namespace subsonic {

/// Global macroscopic fields reassembled from a 2D run's dumps.  Inactive
/// (all-solid) subregions hold the quiescent state, exactly as in
/// ParallelDriver::gather.
struct GatheredFields2D {
  long step = 0;  ///< step counter every dump agreed on
  PaddedField2D<double> rho;
  PaddedField2D<double> vx;
  PaddedField2D<double> vy;
};

/// 3D counterpart of GatheredFields2D.
struct GatheredFields3D {
  long step = 0;
  PaddedField3D<double> rho;
  PaddedField3D<double> vx;
  PaddedField3D<double> vy;
  PaddedField3D<double> vz;
};

/// Reassembles rho/Vx/Vy from the dumps of a (jx x jy) supervised run in
/// `workdir`.  `epoch` == -1 reads the final rank_<r>.dump files; an
/// `epoch` >= 0 must be committed (<= the MANIFEST's newest epoch) and
/// reads that epoch's dumps.  The mask, params, method and decomposition
/// must match the run that wrote the dumps; throws checkpoint_error /
/// contract_error on corrupt files or any mismatch, including dumps that
/// disagree on the step counter.
GatheredFields2D gather_fields2d(const Mask2D& mask,
                                 const FluidParams& params, Method method,
                                 int jx, int jy, const std::string& workdir,
                                 long epoch = -1);

/// 3D counterpart: reassembles rho/Vx/Vy/Vz from a (jx x jy x jz) run.
GatheredFields3D gather_fields3d(const Mask3D& mask,
                                 const FluidParams& params, Method method,
                                 int jx, int jy, int jz,
                                 const std::string& workdir, long epoch = -1);

/// Gather surface of the over-decomposed runtime: reassembles the fields
/// from per-*block* dumps ("block_<b>.dump", or a committed epoch's
/// "block_<b>.epoch_<e>.dump").  `block_side` must match the run that
/// wrote the dumps (0 / -1 resolve exactly as ProcessRunOptions::
/// block_side does for a blocked run: SUBSONIC_BLOCKS or the default).
/// Owner-map agnostic — block dumps carry no rank identity, so a gather
/// works across any sequence of rebalances.
GatheredFields2D gather_fields2d_blocked(const Mask2D& mask,
                                         const FluidParams& params,
                                         Method method, int jx, int jy,
                                         int block_side,
                                         const std::string& workdir,
                                         long epoch = -1);

/// 3D counterpart of gather_fields2d_blocked.
GatheredFields3D gather_fields3d_blocked(const Mask3D& mask,
                                         const FluidParams& params,
                                         Method method, int jx, int jy, int jz,
                                         int block_side,
                                         const std::string& workdir,
                                         long epoch = -1);

}  // namespace subsonic
