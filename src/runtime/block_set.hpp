// One rank's share of an over-decomposed run: the list of blocks the
// owner map assigns to this rank, each a full Domain over its block box,
// stepped phase-synchronously.  The per-step structure is the familiar
// overlap pattern lifted from one subregion to a block list —
//
//   for every block: compute the boundary band
//   for every block: post the band messages (intra-rank: a local mailbox
//                    handoff; inter-rank: the caller's send hook)
//   for every block: compute the interior
//   for every block: complete the receives
//
// — so a neighbouring block on the same rank is served by a memcpy-cheap
// mailbox entry while a block on another rank flows through the existing
// transport, multiplexed on the rank-pair channel by make_block_tag.
// Kernels are untouched and see exactly the ghost data the monolithic
// runtime would supply, which is what makes blocked runs bitwise equal to
// monolithic ones (tested).  Compute time is charged per block
// ("compute.block_<id>"), giving the rebalancer the per-block T_calc the
// issue's telemetry loop feeds on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/transport.hpp"
#include "src/runtime/domain_traits.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

template <int Dim>
class BlockSet {
 public:
  using Traits = DomainTraits<Dim>;
  using Mask = typename Traits::Mask;
  using Domain = typename Traits::Domain;
  using BlockDecomp = typename Traits::BlockDecomp;
  using LinkPlan = typename Traits::LinkPlan;

  /// Inter-rank hooks: send(dst_rank, tag, payload) and
  /// recv(src_rank, tag) -> payload, typically bound to a Transport or a
  /// TcpEndpoint.  Never invoked for intra-rank block pairs.
  using SendFn =
      std::function<void(int, MessageTag, std::vector<double>)>;
  using RecvFn = std::function<std::vector<double>(int, MessageTag)>;

  /// Builds one Domain per block `bd` assigns to `rank` (ascending block
  /// id).  `tel` must outlive the set; per-block compute spans and the
  /// rank's step counter are charged into it.
  BlockSet(const Mask& mask, const FluidParams& params, Method method,
           const BlockDecomp& bd, int rank, int threads,
           telemetry::Session* tel);

  int rank() const { return rank_; }
  int ghost() const { return ghost_; }
  const BlockDecomp& blocks() const { return bd_; }

  int local_count() const { return static_cast<int>(locals_.size()); }
  /// Global block ids of this rank, ascending.
  const std::vector<int>& block_ids() const { return ids_; }
  Domain& domain(int local_index) { return *locals_[local_index].domain; }
  const Domain& domain(int local_index) const {
    return *locals_[local_index].domain;
  }
  /// Domain of global block `block` (must be owned by this rank).
  Domain& domain_of_block(int block);

  /// Common step counter of every local block.
  long step() const;

  /// One integration step of every local block.  `slow_permille` > 0
  /// injects the slow-host fault: each compute phase is followed by a
  /// busy-spin of elapsed * permille / 1000, charged into the same
  /// per-block compute timer so the telemetry sees the slow rank exactly
  /// as it would see a genuinely slow CPU.
  void step_once(Scheduling sched, const SendFn& send, const RecvFn& recv,
                 int slow_permille = 0);

  /// Full-state ghost synchronization of every field (the blocked
  /// reinitialize / cohort-entry handshake); `sync_step` is the tag's step
  /// component and must agree across ranks.
  void sync_all_fields(long sync_step, const SendFn& send,
                       const RecvFn& recv);

 private:
  struct LocalBlock {
    int id = -1;
    std::unique_ptr<Domain> domain;
    std::vector<LinkPlan> links;  ///< peer = neighbouring *block* id
    std::string compute_timer;    ///< "compute.block_<id>"
  };

  void post_sends(LocalBlock& b, const std::vector<FieldId>& fields,
                  long step, int phase, const SendFn& send);
  void complete_recvs(LocalBlock& b, const std::vector<FieldId>& fields,
                      long step, int phase, const RecvFn& recv);

  BlockDecomp bd_;
  FluidParams params_;
  Method method_;
  int rank_ = -1;
  int ghost_ = 1;
  std::vector<Phase> schedule_;
  std::vector<int> ids_;
  std::vector<LocalBlock> locals_;
  /// Intra-rank mailbox, keyed by the sender's full block tag.  Sends of a
  /// phase always precede its receives, so a lookup never misses.
  std::map<MessageTag, std::vector<double>> mailbox_;
  telemetry::Session* tel_ = nullptr;
};

extern template class BlockSet<2>;
extern template class BlockSet<3>;

}  // namespace subsonic
