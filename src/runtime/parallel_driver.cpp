#include "src/runtime/parallel_driver.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "src/comm/in_memory_transport.hpp"
#include "src/io/checkpoint.hpp"
#include "src/util/check.hpp"
#include "src/util/log.hpp"

namespace subsonic {

namespace {
/// Phase index reserved for the full-state synchronization that seeds the
/// ghost regions before the first step and after reinitialize().
constexpr int kSyncPhase = 1023;
}  // namespace

template <int Dim>
ParallelDriver<Dim>::ParallelDriver(const Mask& mask,
                                    const FluidParams& params, Method method,
                                    const GridShape& grid,
                                    std::shared_ptr<Transport> transport,
                                    Scheduling sched, int threads)
    : decomp_(Traits::make_decomposition(mask, grid)),
      params_(params),
      method_(method),
      ghost_(required_ghost(method, params.filter_eps > 0.0)),
      schedule_(Traits::make_schedule(method)),
      transport_(std::move(transport)),
      sched_(sched) {
  const auto active = active_ranks(decomp_, mask);
  active_.assign(decomp_.rank_count(), false);
  for (int r : active) active_[r] = true;

  if (!transport_)
    transport_ = std::make_shared<InMemoryTransport>(decomp_.rank_count());
  telemetry_ =
      std::make_unique<telemetry::Session>(telemetry::Session::from_env());
  transport_->attach_metrics(telemetry_->metrics_ptr());

  worker_of_rank_.assign(decomp_.rank_count(), -1);
  workers_.reserve(active.size());
  for (int r = 0; r < decomp_.rank_count(); ++r) {
    SUBSONIC_REQUIRE_MSG(
        !Traits::thinner_than_ghost(decomp_.box(r), ghost_),
        "subregion thinner than the ghost width: its depth-g padding "
        "would need data from non-adjacent subregions");
  }
  for (int r : active) {
    Worker w;
    w.rank = r;
    w.domain = std::make_unique<Domain>(mask, decomp_.box(r), params_,
                                        method_, ghost_, threads);
    w.links = Traits::make_links(decomp_, r, ghost_, params_, active_);
    worker_of_rank_[r] = static_cast<int>(workers_.size());
    workers_.push_back(std::move(w));
  }

  reinitialize();
}

template <int Dim>
typename ParallelDriver<Dim>::Domain& ParallelDriver<Dim>::subdomain(
    int rank) {
  SUBSONIC_REQUIRE(rank >= 0 && rank < decomp_.rank_count());
  SUBSONIC_REQUIRE_MSG(worker_of_rank_[rank] >= 0, "rank is inactive");
  return *workers_[worker_of_rank_[rank]].domain;
}

template <int Dim>
const typename ParallelDriver<Dim>::Domain& ParallelDriver<Dim>::subdomain(
    int rank) const {
  return const_cast<ParallelDriver<Dim>*>(this)->subdomain(rank);
}

template <int Dim>
void ParallelDriver<Dim>::post_sends(Worker& w,
                                     const std::vector<FieldId>& fields,
                                     long step, int phase_index) {
  for (const LinkPlan& link : w.links)
    transport_->send(w.rank, link.peer,
                     make_tag(step, phase_index, link.dir),
                     Traits::pack(*w.domain, fields, link.send_box));
}

template <int Dim>
void ParallelDriver<Dim>::complete_recvs(Worker& w,
                                         const std::vector<FieldId>& fields,
                                         long step, int phase_index) {
  for (const LinkPlan& link : w.links) {
    const auto payload = transport_->recv(
        w.rank, link.peer, make_tag(step, phase_index, link.peer_dir));
    Traits::unpack(*w.domain, fields, link.recv_box, payload);
  }
}

template <int Dim>
void ParallelDriver<Dim>::exchange(Worker& w,
                                   const std::vector<FieldId>& fields,
                                   long step, int phase_index) {
  // Send everything first, then block on the receives: the paper's
  // processes compute, post their boundary, and wait for their
  // neighbours' boundaries.
  post_sends(w, fields, step, phase_index);
  complete_recvs(w, fields, step, phase_index);
}

template <int Dim>
void ParallelDriver<Dim>::step_once(Worker& w) {
  telemetry::Session* const tel = telemetry_.get();
  const long step = w.domain->step();
  set_log_context(w.rank, step);
  for (size_t i = 0; i < schedule_.size(); ++i) {
    const Phase& phase = schedule_[i];
    if (phase.kind == Phase::Kind::kCompute) {
      const bool split = sched_ == Scheduling::kOverlap &&
                         i + 1 < schedule_.size() &&
                         schedule_[i + 1].kind == Phase::Kind::kExchange;
      if (split) {
        // Boundary band first, then the sends go out while the interior
        // computes; only then block on the neighbours' bands.
        const Phase& ex = schedule_[i + 1];
        const int ex_index = static_cast<int>(i + 1);
        {
          telemetry::ScopedSpan span(
              tel, w.rank,
              compute_phase_name(phase.compute, ComputePass::kBand),
              "compute", step);
          Traits::run_compute(*w.domain, phase.compute, ComputePass::kBand);
          w.stats.compute_s += span.stop();
        }
        {
          telemetry::ScopedSpan span(tel, w.rank, "comm.post_sends", "comm",
                                     step);
          post_sends(w, ex.fields, step, ex_index);
          w.stats.comm_s += span.stop();
        }
        {
          telemetry::ScopedSpan span(
              tel, w.rank,
              compute_phase_name(phase.compute, ComputePass::kInterior),
              "compute", step);
          Traits::run_compute(*w.domain, phase.compute,
                              ComputePass::kInterior);
          w.stats.compute_s += span.stop();
        }
        {
          telemetry::ScopedSpan span(tel, w.rank, "comm.complete_recvs",
                                     "comm", step);
          complete_recvs(w, ex.fields, step, ex_index);
          w.stats.comm_s += span.stop();
        }
        ++i;  // the exchange phase was folded into the split
      } else {
        telemetry::ScopedSpan span(tel, w.rank,
                                   compute_phase_name(phase.compute),
                                   "compute", step);
        Traits::run_compute(*w.domain, phase.compute);
        w.stats.compute_s += span.stop();
      }
    } else {
      telemetry::ScopedSpan span(tel, w.rank, "comm.exchange", "comm", step);
      exchange(w, phase.fields, step, static_cast<int>(i));
      w.stats.comm_s += span.stop();
    }
  }
  w.domain->set_step(step + 1);
  tel->metrics().counter(w.rank, "steps").add();
}

template <int Dim>
void ParallelDriver<Dim>::worker_loop(Worker& w, int steps) {
  for (int s = 0; s < steps; ++s) step_once(w);
  clear_log_context();
}

template <int Dim>
const WorkerStats& ParallelDriver<Dim>::stats(int rank) const {
  SUBSONIC_REQUIRE(rank >= 0 && rank < decomp_.rank_count());
  SUBSONIC_REQUIRE_MSG(worker_of_rank_[rank] >= 0, "rank is inactive");
  return workers_[worker_of_rank_[rank]].stats;
}

template <int Dim>
void ParallelDriver<Dim>::run(int n) {
  if (workers_.size() == 1) {  // no threads needed
    worker_loop(workers_[0], n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (Worker& w : workers_) {
    threads.emplace_back([this, &w, n, &first_error, &error_mutex] {
      try {
        worker_loop(w, n);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

template <int Dim>
int ParallelDriver<Dim>::run_until_sync(int max_steps,
                                        const std::atomic<bool>& request,
                                        SyncFile& sync_file) {
  SUBSONIC_REQUIRE(max_steps >= 1);
  const long start = workers_.empty() ? 0 : workers_[0].domain->step();
  // A sync file left over from a crashed or aborted earlier round would
  // make the first announcer compute a stale agreed step and wedge the
  // group; clear it before anyone can announce.  Safe: workers announce
  // only after `request` flips, which is observed strictly after entry.
  sync_file.clear();
  // Detection happens at step boundaries, so by the time the last worker
  // announces, early announcers may have drifted ahead by the stencil
  // bound; widening the agreed step by that bound keeps it reachable
  // without overshoot (appendix A).
  const long margin = decomp_.max_unsync(StencilShape::kFull);

  auto loop = [&](Worker& w) {
    bool announced = false;
    long stop = start + max_steps;
    while (w.domain->step() < stop) {
      if (request.load(std::memory_order_relaxed)) {
        if (!announced) {
          sync_file.announce(w.rank, w.domain->step());
          announced = true;
        }
        const long agreed =
            sync_file.sync_step(static_cast<int>(workers_.size()));
        if (agreed >= 0) stop = std::min(stop, agreed + margin);
        if (w.domain->step() >= stop) break;
      }
      step_once(w);
    }
    clear_log_context();
  };

  if (workers_.size() == 1) {
    loop(workers_[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (Worker& w : workers_) {
      threads.emplace_back([&] {
        try {
          loop(w);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Everyone agreed on the same stop step; assert it.
  const long finished = workers_.empty() ? start : workers_[0].domain->step();
  for (const Worker& w : workers_)
    SUBSONIC_CHECK(w.domain->step() == finished);
  return static_cast<int>(finished - start);
}

template <int Dim>
void ParallelDriver<Dim>::reinitialize() {
  // Per-instantiation static: the 2D and 3D counters start at disjoint
  // bases, so sync tags never collide on a transport shared across
  // dimensions.
  static std::atomic<long> sync_epoch{Traits::kSyncEpochBase};
  const long epoch = sync_epoch.fetch_add(1);

  std::vector<FieldId> all_fields = Traits::macro_fields();
  if (method_ == Method::kLatticeBoltzmann) {
    const int q = workers_.empty() ? 0 : workers_[0].domain->q();
    for (int i = 0; i < q; ++i) all_fields.push_back(population(i));
  }

  auto sync_one = [&](Worker& w) {
    if (method_ == Method::kLatticeBoltzmann)
      Traits::set_equilibrium(*w.domain);
    telemetry::ScopedSpan span(telemetry_.get(), w.rank, "comm.sync", "comm",
                               w.domain->step());
    exchange(w, all_fields, epoch, kSyncPhase);
  };

  if (workers_.empty()) return;
  if (workers_.size() == 1) {
    sync_one(workers_[0]);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (Worker& w : workers_) threads.emplace_back([&] { sync_one(w); });
  for (std::thread& t : threads) t.join();
}

template <int Dim>
void ParallelDriver<Dim>::save_checkpoint(const std::string& dir) const {
  // One after the other in rank order, as the paper's processes stagger
  // their saves to avoid monopolizing the file server.
  for (const Worker& w : workers_)
    save_domain(*w.domain,
                dir + "/rank_" + std::to_string(w.rank) + ".dump");
}

template <int Dim>
void ParallelDriver<Dim>::restore_checkpoint(const std::string& dir) {
  for (Worker& w : workers_)
    restore_domain(*w.domain,
                   dir + "/rank_" + std::to_string(w.rank) + ".dump");
}

template <int Dim>
typename ParallelDriver<Dim>::Field ParallelDriver<Dim>::gather(
    FieldId id) const {
  Field out = Traits::make_global_field(decomp_);
  out.fill(Traits::quiescent(id, params_));
  for (const Worker& w : workers_)
    Traits::copy_interior(out, *w.domain, id, decomp_.box(w.rank));
  return out;
}

template class ParallelDriver<2>;
template class ParallelDriver<3>;

}  // namespace subsonic
