// Compatibility header: SerialDriver2D is the 2D instantiation of the
// dimension-generic SerialDriver template (serial_driver.hpp).
#pragma once

#include "src/runtime/serial_driver.hpp"

namespace subsonic {

using SerialDriver2D = SerialDriver<2>;

}  // namespace subsonic
