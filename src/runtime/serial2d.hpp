// Serial reference driver: runs the full grid as a single subregion.  The
// paper's design point is that the serial and parallel programs share all
// numerical code and differ only in what the "communicate" phases do —
// here they reduce to periodic wrap-around copies (or nothing at all).
#pragma once

#include <memory>

#include "src/geometry/mask.hpp"
#include "src/solver/domain2d.hpp"
#include "src/solver/schedule.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

class SerialDriver2D {
 public:
  /// `threads` shards each kernel's rows across a per-domain worker pool
  /// (0 = SUBSONIC_THREADS env or 1); results are bitwise identical for
  /// any value.
  SerialDriver2D(const Mask2D& mask, const FluidParams& params,
                 Method method, int threads = 0);

  /// Advances `n` integration steps.
  void run(int n);

  Domain2D& domain() { return domain_; }
  const Domain2D& domain() const { return domain_; }

  /// Call after editing the macroscopic fields directly (custom initial
  /// conditions): refreshes ghost wraps and, for LB, re-seeds the
  /// populations at the new equilibrium.
  void reinitialize();

  /// Live telemetry: compute phases charge "compute.*" timers at rank 0,
  /// the periodic wraps "comm.periodic_wrap"; trace per SUBSONIC_TRACE.
  telemetry::Session& telemetry() { return *telemetry_; }
  const telemetry::Session& telemetry() const { return *telemetry_; }

 private:
  /// Periodic wrap of one field's ghost layers (no-op without periodicity).
  void fill_periodic(PaddedField2D<double>& u);
  /// Wrap every field the schedule ever exchanges plus the macro fields.
  void full_sync();

  std::vector<Phase> schedule_;
  Domain2D domain_;
  std::unique_ptr<telemetry::Session> telemetry_;
};

}  // namespace subsonic
