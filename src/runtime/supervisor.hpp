// The fork()-based process runtime, dimension-generic: each active
// subregion runs in a real UNIX process, exactly as in the paper — "the
// job-submit program ... begins a parallel subprocess on each workstation"
// — with TCP/IP sockets between the processes and the shared port-registry
// handshake.  On exit, every process leaves its state as a dump file in
// the working directory, where it can be inspected or resumed (the dump
// files double as the result-gathering mechanism for the parent; see
// gather.hpp).
//
// The parent is a *supervisor*: it reaps children out of order with
// waitpid(WNOHANG), commits staggered checkpoint epochs (an epoch MANIFEST
// is written only once every active rank's dump is durable and CRC-clean),
// pumps every child's heartbeat pipe through a hung-rank watchdog, and on
// a casualty — an abnormal exit, or heartbeat silence past the adaptive
// deadline (escalated SIGTERM -> grace -> SIGKILL) — restarts *only* the
// dead rank from the newest complete epoch while the survivors roll back
// in-process, up to a bounded restart budget (liveness.hpp).  Comm
// deadlines inside the children turn a dead neighbour into a clean child
// exit the supervisor can act on — a failed rank can slow a run down, but
// it can neither hang it nor corrupt its results.
//
// run_supervised<Dim> is the single implementation; run_multiprocess2d /
// run_multiprocess3d (process2d.hpp / process3d.hpp) are thin
// instantiation wrappers.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/domain_traits.hpp"
#include "src/runtime/liveness.hpp"
#include "src/runtime/worker_stats.hpp"
#include "src/solver/params.hpp"
#include "src/solver/pass.hpp"
#include "src/telemetry/summary.hpp"

namespace subsonic {

/// ProcessRunOptions::status_port value that requests an ephemeral port
/// regardless of the environment (tests and tools read the bound port
/// back from <workdir>/status.port).
constexpr int kStatusPortEphemeral = -2;

struct ProcessRunOptions {
  /// Per-step ordering, exactly as in the threaded drivers; the overlap
  /// schedule posts each boundary band as soon as it is computed.
  Scheduling sched = Scheduling::kOverlap;

  /// Intra-subregion worker count inside each child (0 = SUBSONIC_THREADS
  /// env or 1); bitwise neutral.
  int threads = 0;

  /// Steps between staggered epoch checkpoints (0 = final dump only).
  /// Each rank snapshots its state at every interval boundary and flushes
  /// the bytes to disk a few steps later, staggered by rank — the paper's
  /// orderly staggered state saving, which keeps the ranks from hitting
  /// the disk in lockstep.
  int checkpoint_interval = 0;

  /// How many times the supervisor may respawn the cohort after an
  /// abnormal child exit before giving up with a per-rank report.
  int max_restarts = 2;

  /// Per-recv deadline inside the children (0 = block forever).  With a
  /// deadline, a rank whose neighbour died exits cleanly within the bound
  /// instead of hanging in recv.
  int recv_deadline_ms = 10000;

  /// Fault-injection spec (see src/util/fault_plan.hpp).  Empty means
  /// "read SUBSONIC_FAULTS from the environment", so CI can inject faults
  /// into an unmodified test suite; pass an explicit spec to pin a test's
  /// faults regardless of environment.
  std::string faults;

  /// Chrome-trace capture in the children and merged trace.json in the
  /// supervisor: 1 forces on, 0 forces off, -1 follows SUBSONIC_TRACE.
  /// Metrics JSONL streams are always written (their cost is one timer
  /// record per phase); tracing additionally records every span.
  int trace = -1;

  /// Over-decomposition block side.  0 (the default) keeps the monolithic
  /// one-subregion-per-rank runtime — and its exact on-disk layout and
  /// bitwise output.  -1 resolves via the SUBSONIC_BLOCKS environment
  /// variable with kDefaultBlockSide as the fallback; > 0 is an explicit
  /// target side.  Any nonzero value routes the run through the blocked
  /// runtime (per-block checkpoints, per-block compute telemetry).
  int block_side = 0;

  /// Steps between dynamic load-balance decision points (0 = never
  /// rebalance).  Requires block_side != 0.  At each boundary the
  /// supervisor folds the per-block compute timers, and — when the
  /// measured per-rank imbalance exceeds rebalance_threshold — restarts
  /// the cohort under a rewritten block->rank owner map (block state moves
  /// through the per-block dumps, so this is the paper's stop + save +
  /// restart migration at block granularity).
  int rebalance_interval = 0;

  /// Hysteresis: rebalance only while max/mean per-rank T_calc exceeds
  /// this (1.15 = 15% skew tolerated before blocks move).
  double rebalance_threshold = 1.15;

  /// Steps between each child's periodic telemetry publications: a delta
  /// append to rank_<r>.metrics.jsonl plus a compact metrics frame up the
  /// heartbeat pipe (the supervisor's live view, and the prefix a
  /// SIGKILLed rank still contributes to run_summary.json, both feed on
  /// it).  0 = SUBSONIC_METRICS_FLUSH env, defaulting to 16; < 0 turns
  /// periodic publication off (final dump only).  Observationally inert
  /// to the physics: results stay bitwise identical at any setting.
  int metrics_flush_interval = 0;

  /// Live status endpoint on 127.0.0.1 serving GET /healthz, /status
  /// (JSON: per-rank live view, owner map, liveness + rebalance tails)
  /// and /metrics (Prometheus text exposition).  0 = SUBSONIC_STATUS_PORT
  /// env (unset/empty/"0" = off, "auto" = ephemeral port, a number = that
  /// port); -1 forces off; kStatusPortEphemeral (-2) forces an ephemeral
  /// port; > 0 binds that port.  The bound port is written to
  /// <workdir>/status.port while the run is in flight.
  int status_port = 0;

  /// Heartbeat watchdog + escalation policy (liveness.hpp): every child
  /// beacons over an inherited pipe; a rank silent past the adaptive
  /// deadline is SIGTERMed (graceful telemetry flush), then SIGKILLed
  /// after a grace window, and restarted *surgically* — survivors roll
  /// back in-process instead of being killed and re-forked.
  LivenessOptions liveness;

  /// How rank processes come to exist (launcher.hpp): "fork" runs the
  /// child body in-process after fork(), "exec" posix_spawns the
  /// subsonic_child binary, which rebuilds its world from the cohort spec
  /// file.  "" resolves SUBSONIC_LAUNCHER, defaulting to fork.  Results
  /// are bitwise identical either way.
  std::string launcher;
};

/// How one rank's process ended, for the supervisor's failure report.
struct RankFailure {
  int rank = -1;
  int wait_status = 0;  ///< raw waitpid() status
  std::string detail;   ///< human form: "exited 1", "killed by signal 9"
};

/// Thrown when the restart budget is exhausted (or was 0): the message is
/// the per-rank failure report, and `failures` carries it structured.
class ProcessRunError : public std::runtime_error {
 public:
  ProcessRunError(const std::string& what, std::vector<RankFailure> f)
      : std::runtime_error(what), failures(std::move(f)) {}
  std::vector<RankFailure> failures;
};

struct ProcessRunResult {
  int processes = 0;        ///< child processes per cohort (active subregions)
  long final_step = 0;      ///< step counter all subregions reached
  int restarts = 0;         ///< cohort respawns the supervisor performed
  long committed_epoch = -1;  ///< newest MANIFEST-committed epoch (-1: none)

  /// Per-active-rank timing reconstructed from each child's
  /// rank_<r>.metrics.jsonl stream (parallel to the active rank list,
  /// ascending rank order).  compute_s is the child's summed "compute.*"
  /// phase time, comm_s its summed "comm.*" time — the measured
  /// T_calc and T_com of the efficiency model.
  std::vector<WorkerStats> rank_stats;

  /// The full accumulated telemetry behind rank_stats (parallel to it):
  /// counters, timers and histograms folded across every segment, respawn
  /// round and killed-rank harvest.  This is the only post-run access to
  /// the per-rank step.wall / comm.exchange histograms — the supervisor
  /// consumes and deletes the on-disk rank_<r>.metrics.jsonl streams as
  /// it folds them.
  std::vector<telemetry::RankMetrics> rank_metrics;

  /// Path of the run_summary.json the supervisor wrote (empty when the
  /// run had no active ranks).  Holds measured T_calc/T_com/utilization
  /// per rank next to the paper-model predicted efficiency f.
  std::string summary_path;

  /// Over-decomposition block count (0 for a monolithic run).
  int blocks = 0;

  /// Every dynamic load-balance event the supervisor performed, in step
  /// order (also logged into run_summary.json).
  std::vector<telemetry::RebalanceRecord> rebalances;

  /// Final block -> rank owner map (empty for a monolithic run).
  std::vector<int> block_owner;

  /// The watchdog's audit trail: every hang/exit detection, escalation
  /// rung, survivor rollback and surgical restart, in event order (also
  /// logged into run_summary.json).
  std::vector<telemetry::LivenessRecord> liveness;

  /// Total child processes forked over the whole run.  processes + the
  /// number of surgically restarted ranks — survivors are rolled back
  /// in-process and never re-forked, which this counter proves.
  int forks = 0;
};

/// Forks one child per active subregion of the `grid` decomposition of
/// `mask`, runs `steps` integration steps with boundary exchange over real
/// TCP sockets, and writes "rank_<r>.dump" per subregion into `workdir`
/// (which must exist).  If matching dump files are already present they
/// are restored first, so repeated calls continue the run; stale files
/// from a different geometry, decomposition or dimension are removed at
/// start-of-run, so e.g. a 2D run's leftovers can never poison a 3D run
/// sharing the directory.  Children are supervised per the options above;
/// throws ProcessRunError when the restart budget is exhausted, with
/// every child reaped and the port registry removed.
template <int Dim>
ProcessRunResult run_supervised(const typename DomainTraits<Dim>::Mask& mask,
                                const FluidParams& params, Method method,
                                const GridShape& grid, int steps,
                                const std::string& workdir,
                                const ProcessRunOptions& options);

extern template ProcessRunResult run_supervised<2>(
    const Mask2D&, const FluidParams&, Method, const GridShape&, int,
    const std::string&, const ProcessRunOptions&);
extern template ProcessRunResult run_supervised<3>(
    const Mask3D&, const FluidParams&, Method, const GridShape&, int,
    const std::string&, const ProcessRunOptions&);

/// The over-decomposed process runtime (run_supervised dispatches here
/// when options.block_side != 0; callable directly).  Each rank process
/// steps the blocks the owner map assigns to it, checkpoints are
/// per-block ("block_<b>.dump" / "block_<b>.epoch_<e>.dump"), and — when
/// options.rebalance_interval > 0 — the supervisor runs the job in
/// segments, folding per-block compute timers at every boundary and
/// restarting the cohort under a rewritten owner map whenever the
/// measured imbalance warrants it.
template <int Dim>
ProcessRunResult run_supervised_blocked(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const GridShape& grid, int steps,
    const std::string& workdir, const ProcessRunOptions& options);

extern template ProcessRunResult run_supervised_blocked<2>(
    const Mask2D&, const FluidParams&, Method, const GridShape&, int,
    const std::string&, const ProcessRunOptions&);
extern template ProcessRunResult run_supervised_blocked<3>(
    const Mask3D&, const FluidParams&, Method, const GridShape&, int,
    const std::string&, const ProcessRunOptions&);

}  // namespace subsonic
