// Compatibility header: SerialDriver3D is the 3D instantiation of the
// dimension-generic SerialDriver template (serial_driver.hpp).
#pragma once

#include "src/runtime/serial_driver.hpp"

namespace subsonic {

using SerialDriver3D = SerialDriver<3>;

}  // namespace subsonic
