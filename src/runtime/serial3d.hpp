// Serial reference driver for 3D runs; see serial2d.hpp.
#pragma once

#include <memory>

#include "src/geometry/mask.hpp"
#include "src/solver/domain3d.hpp"
#include "src/solver/schedule.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

class SerialDriver3D {
 public:
  /// `threads` as in SerialDriver2D: intra-domain row sharding, bitwise
  /// neutral.
  SerialDriver3D(const Mask3D& mask, const FluidParams& params,
                 Method method, int threads = 0);

  void run(int n);

  Domain3D& domain() { return domain_; }
  const Domain3D& domain() const { return domain_; }

  void reinitialize();

  /// Live telemetry; see SerialDriver2D::telemetry().
  telemetry::Session& telemetry() { return *telemetry_; }
  const telemetry::Session& telemetry() const { return *telemetry_; }

 private:
  void fill_periodic(PaddedField3D<double>& u);
  void full_sync();

  std::vector<Phase> schedule_;
  Domain3D domain_;
  std::unique_ptr<telemetry::Session> telemetry_;
};

}  // namespace subsonic
