// Serial reference driver: runs the full grid as a single subregion.  The
// paper's design point is that the serial and parallel programs share all
// numerical code and differ only in what the "communicate" phases do —
// here they reduce to periodic wrap-around copies (or nothing at all).
// One template covers both dimensions; DomainTraits supplies the concrete
// grid machinery.
#pragma once

#include <memory>
#include <vector>

#include "src/runtime/domain_traits.hpp"
#include "src/solver/schedule.hpp"
#include "src/telemetry/telemetry.hpp"

namespace subsonic {

template <int Dim>
class SerialDriver {
 public:
  using Traits = DomainTraits<Dim>;
  using Mask = typename Traits::Mask;
  using Domain = typename Traits::Domain;

  /// `threads` shards each kernel's rows across a per-domain worker pool
  /// (0 = SUBSONIC_THREADS env or 1); results are bitwise identical for
  /// any value.
  SerialDriver(const Mask& mask, const FluidParams& params, Method method,
               int threads = 0);

  /// Advances `n` integration steps.
  void run(int n);

  Domain& domain() { return domain_; }
  const Domain& domain() const { return domain_; }

  /// Call after editing the macroscopic fields directly (custom initial
  /// conditions): refreshes ghost wraps and, for LB, re-seeds the
  /// populations at the new equilibrium.
  void reinitialize();

  /// Live telemetry: compute phases charge "compute.*" timers at rank 0,
  /// the periodic wraps "comm.periodic_wrap"; trace per SUBSONIC_TRACE.
  telemetry::Session& telemetry() { return *telemetry_; }
  const telemetry::Session& telemetry() const { return *telemetry_; }

 private:
  /// Wrap every field the schedule ever exchanges plus the macro fields.
  void full_sync();

  std::vector<Phase> schedule_;
  Domain domain_;
  std::unique_ptr<telemetry::Session> telemetry_;
};

extern template class SerialDriver<2>;
extern template class SerialDriver<3>;

}  // namespace subsonic
