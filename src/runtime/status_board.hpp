// The supervisor's live introspection state: a thread-safe board the
// supervision loop feeds (metrics frames off the heartbeat pipes,
// liveness events, rebalances, harvests) and the status endpoint reads.
// The board renders three documents:
//
//   /healthz  ->  "ok\n" (the supervisor process is up and serving)
//   /status   ->  JSON: run info, per-rank live view (step, T_calc,
//                 T_com, utilization, step-wall and exchange
//                 percentiles), the block->rank owner map, and bounded
//                 tails of the liveness + rebalance audit trails
//   /metrics  ->  Prometheus text exposition of the full per-rank
//                 registries, rebuilt at scrape time from the harvested
//                 prefixes plus each rank's delta stream on disk (the
//                 children flush every metrics_flush_interval steps)
//
// Everything here is read-mostly bookkeeping behind one mutex; nothing
// touches simulation state, so serving (or not serving) the endpoint
// leaves the physics bitwise identical.
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/runtime/liveness.hpp"
#include "src/telemetry/summary.hpp"

namespace subsonic {

namespace telemetry {
class Session;
}

namespace liveness {

class StatusBoard {
 public:
  struct Config {
    std::string workdir;
    std::vector<int> ranks;          ///< active ranks, ascending
    std::vector<double> fluid_cells; ///< parallel to ranks (0 = unknown)
    std::vector<std::string> hosts;  ///< placement tags, parallel to ranks
    std::string launcher;            ///< "fork" | "exec" ("" = unknown)
    long start_step = 0;
    long target_step = 0;
    int dims = 2;
    long blocks = 0;                 ///< 0: monolithic runtime
    telemetry::Session* supervisor = nullptr;  ///< rank -1 self-metrics
  };

  void configure(Config cfg);

  // Feeders, called from the supervision thread.
  void on_frame(const MetricsFrame& frame);
  void on_liveness(const telemetry::LivenessRecord& record);
  void on_rebalance(const telemetry::RebalanceRecord& record);
  void on_harvest(int rank, const telemetry::RankMetrics& harvested);
  void set_owner_map(std::vector<int> owner);
  void set_done(bool done);

  /// HTTP dispatch: fills body/content_type for the routes above and
  /// returns true; false = unknown path (the server answers 404).
  bool handle(const std::string& path, std::string* body,
              std::string* content_type) const;

  std::string status_json() const;
  std::string metrics_text() const;

 private:
  struct RankLive {
    bool has_frame = false;
    MetricsFrame frame;
    int generation = 0;
    std::string state = "starting";  ///< starting|running|hung|down|done
    std::string last_event;
  };

  mutable std::mutex mutex_;
  Config cfg_;
  bool done_ = false;
  std::map<int, RankLive> live_;
  std::map<int, telemetry::RankMetrics> harvested_;
  std::vector<int> owner_;
  std::deque<telemetry::LivenessRecord> liveness_tail_;
  std::deque<telemetry::RebalanceRecord> rebalance_tail_;
};

}  // namespace liveness
}  // namespace subsonic
