#include "src/runtime/cohort_spec.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/io/atomic_file.hpp"

namespace subsonic::cohort {

namespace {

constexpr std::uint32_t kMagic = 0x53425350u;  // "SBSP"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<char>& out, std::uint32_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_i32(std::vector<char>& out, std::int32_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_f64(std::vector<char>& out, double v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

struct Reader {
  const char* p;
  const char* end;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n)
      throw std::runtime_error("cohort spec truncated");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  std::int32_t i32() {
    need(4);
    std::int32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  double f64() {
    need(8);
    double v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  char byte() {
    need(1);
    return *p++;
  }
};

}  // namespace

std::vector<char> serialize_cohort_spec(const CohortSpec& spec) {
  std::vector<char> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_i32(out, spec.dim);
  put_i32(out, static_cast<std::int32_t>(spec.method));
  put_i32(out, spec.blocked ? 1 : 0);
  put_i32(out, spec.block_side);
  put_i32(out, spec.grid.jx);
  put_i32(out, spec.grid.jy);
  put_i32(out, spec.grid.jz);
  put_f64(out, spec.params.dx);
  put_f64(out, spec.params.dt);
  put_f64(out, spec.params.cs);
  put_f64(out, spec.params.nu);
  put_f64(out, spec.params.rho0);
  put_f64(out, spec.params.force_x);
  put_f64(out, spec.params.force_y);
  put_f64(out, spec.params.force_z);
  put_f64(out, spec.params.inlet_vx);
  put_f64(out, spec.params.inlet_vy);
  put_f64(out, spec.params.inlet_vz);
  put_f64(out, spec.params.filter_eps);
  put_i32(out, spec.params.periodic_x ? 1 : 0);
  put_i32(out, spec.params.periodic_y ? 1 : 0);
  put_i32(out, spec.params.periodic_z ? 1 : 0);
  // The mask, ghost padding included: ghost rings carry the wall/open
  // geometry the stencils interrogate, so they must round-trip exactly.
  if (spec.dim == 2) {
    const Extents2 e = spec.mask2.extents();
    const int g = spec.mask2.ghost();
    put_i32(out, e.nx);
    put_i32(out, e.ny);
    put_i32(out, 0);
    put_i32(out, g);
    for (int y = -g; y < e.ny + g; ++y)
      for (int x = -g; x < e.nx + g; ++x)
        out.push_back(static_cast<char>(spec.mask2(x, y)));
  } else {
    const Extents3 e = spec.mask3.extents();
    const int g = spec.mask3.ghost();
    put_i32(out, e.nx);
    put_i32(out, e.ny);
    put_i32(out, e.nz);
    put_i32(out, g);
    for (int z = -g; z < e.nz + g; ++z)
      for (int y = -g; y < e.ny + g; ++y)
        for (int x = -g; x < e.nx + g; ++x)
          out.push_back(static_cast<char>(spec.mask3(x, y, z)));
  }
  put_u32(out, static_cast<std::uint32_t>(spec.owner.size()));
  for (int rank : spec.owner) put_i32(out, rank);
  return out;
}

CohortSpec deserialize_cohort_spec(const char* data, std::size_t len) {
  Reader r{data, data + len};
  if (r.u32() != kMagic) throw std::runtime_error("cohort spec: bad magic");
  if (r.u32() != kVersion)
    throw std::runtime_error("cohort spec: unsupported version");
  CohortSpec spec;
  spec.dim = r.i32();
  if (spec.dim != 2 && spec.dim != 3)
    throw std::runtime_error("cohort spec: bad dimension");
  spec.method = static_cast<Method>(r.i32());
  spec.blocked = r.i32() != 0;
  spec.block_side = r.i32();
  spec.grid.jx = r.i32();
  spec.grid.jy = r.i32();
  spec.grid.jz = r.i32();
  spec.params.dx = r.f64();
  spec.params.dt = r.f64();
  spec.params.cs = r.f64();
  spec.params.nu = r.f64();
  spec.params.rho0 = r.f64();
  spec.params.force_x = r.f64();
  spec.params.force_y = r.f64();
  spec.params.force_z = r.f64();
  spec.params.inlet_vx = r.f64();
  spec.params.inlet_vy = r.f64();
  spec.params.inlet_vz = r.f64();
  spec.params.filter_eps = r.f64();
  spec.params.periodic_x = r.i32() != 0;
  spec.params.periodic_y = r.i32() != 0;
  spec.params.periodic_z = r.i32() != 0;
  const int nx = r.i32();
  const int ny = r.i32();
  const int nz = r.i32();
  const int ghost = r.i32();
  if (nx <= 0 || ny <= 0 || ghost < 0)
    throw std::runtime_error("cohort spec: bad mask geometry");
  if (spec.dim == 2) {
    spec.mask2 = Mask2D(Extents2{nx, ny}, ghost);
    for (int y = -ghost; y < ny + ghost; ++y)
      for (int x = -ghost; x < nx + ghost; ++x)
        spec.mask2.set(x, y, static_cast<NodeType>(r.byte()));
  } else {
    if (nz <= 0) throw std::runtime_error("cohort spec: bad mask geometry");
    spec.mask3 = Mask3D(Extents3{nx, ny, nz}, ghost);
    for (int z = -ghost; z < nz + ghost; ++z)
      for (int y = -ghost; y < ny + ghost; ++y)
        for (int x = -ghost; x < nx + ghost; ++x)
          spec.mask3.set(x, y, z, static_cast<NodeType>(r.byte()));
  }
  const std::uint32_t owners = r.u32();
  spec.owner.reserve(owners);
  for (std::uint32_t i = 0; i < owners; ++i) spec.owner.push_back(r.i32());
  return spec;
}

void write_cohort_spec(const std::string& path, const CohortSpec& spec) {
  const std::vector<char> bytes = serialize_cohort_spec(spec);
  atomic_write_file(path, bytes.data(), bytes.size());
}

CohortSpec read_cohort_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cohort spec missing: " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return deserialize_cohort_spec(bytes.data(), bytes.size());
}

}  // namespace subsonic::cohort
