#include "src/runtime/process2d.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "src/comm/tcp_endpoint.hpp"
#include "src/io/checkpoint.hpp"
#include "src/runtime/exchange2d.hpp"
#include "src/solver/schedule.hpp"
#include "src/util/check.hpp"

namespace subsonic {

namespace {

/// The body of one parallel subprocess: build the local domain (or
/// restore its dump), loop compute/exchange for `steps`, dump, exit.
/// Never returns normally — the child must not unwind into the parent's
/// runtime state.
[[noreturn]] void child_main(const Mask2D& mask, const FluidParams& params,
                             Method method, const Decomposition2D& decomp,
                             const std::vector<bool>& active, int rank,
                             int steps, const std::string& workdir,
                             const std::string& registry, Scheduling sched,
                             int threads) {
  try {
    const int ghost = required_ghost(method, params.filter_eps > 0.0);
    Domain2D domain(mask, decomp.box(rank), params, method, ghost, threads);
    const std::string dump_path =
        workdir + "/rank_" + std::to_string(rank) + ".dump";
    {
      std::ifstream probe(dump_path, std::ios::binary);
      if (probe.good()) restore_domain(domain, dump_path);
    }

    TcpEndpoint endpoint(rank, decomp.rank_count(), registry);
    const auto links =
        make_link_plans2d(decomp, rank, ghost, params.periodic_x,
                          params.periodic_y, active);
    const auto schedule = make_schedule2d(method);

    auto post_sends = [&](const std::vector<FieldId>& fields, long step,
                          int phase) {
      for (const LinkPlan2D& link : links)
        endpoint.send(link.peer, make_tag(step, phase, link.dir),
                      pack2d(domain, fields, link.send_box));
    };
    auto complete_recvs = [&](const std::vector<FieldId>& fields, long step,
                              int phase) {
      for (const LinkPlan2D& link : links)
        unpack2d(domain, fields, link.recv_box,
                 endpoint.recv(link.peer,
                               make_tag(step, phase, link.peer_dir)));
    };
    auto exchange = [&](const std::vector<FieldId>& fields, long step,
                        int phase) {
      post_sends(fields, step, phase);
      complete_recvs(fields, step, phase);
    };

    // Initial full sync seeds the ghost regions (same as the threaded
    // runtime's reinitialize step).
    std::vector<FieldId> all_fields{FieldId::kRho, FieldId::kVx,
                                    FieldId::kVy};
    for (int i = 0; i < domain.q(); ++i) all_fields.push_back(population(i));
    exchange(all_fields, domain.step(), 1023);

    for (int s = 0; s < steps; ++s) {
      const long step = domain.step();
      for (size_t i = 0; i < schedule.size(); ++i) {
        const Phase& phase = schedule[i];
        if (phase.kind == Phase::Kind::kCompute) {
          const bool split = sched == Scheduling::kOverlap &&
                             i + 1 < schedule.size() &&
                             schedule[i + 1].kind == Phase::Kind::kExchange;
          if (split) {
            const Phase& ex = schedule[i + 1];
            const int ex_index = static_cast<int>(i + 1);
            run_compute2d(domain, phase.compute, ComputePass::kBand);
            post_sends(ex.fields, step, ex_index);
            run_compute2d(domain, phase.compute, ComputePass::kInterior);
            complete_recvs(ex.fields, step, ex_index);
            ++i;
          } else {
            run_compute2d(domain, phase.compute);
          }
        } else {
          exchange(phase.fields, step, static_cast<int>(i));
        }
      }
      domain.set_step(step + 1);
    }

    // Drain the async send queue before _exit: a peer may still be
    // waiting on our final-step messages.
    endpoint.flush();
    save_domain(domain, dump_path);
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subprocess rank %d failed: %s\n", rank, e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(2);
  }
}

}  // namespace

ProcessRunResult run_multiprocess2d(const Mask2D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int steps,
                                    const std::string& workdir,
                                    Scheduling sched, int threads) {
  params.validate();
  SUBSONIC_REQUIRE(steps >= 1);
  const Decomposition2D decomp(mask.extents(), jx, jy);
  const auto active_list = active_ranks(decomp, mask);
  std::vector<bool> active(decomp.rank_count(), false);
  for (int r : active_list) active[r] = true;

  // Fresh registry per run: ports are ephemeral and stale entries would
  // point at dead listeners.
  const std::string registry = workdir + "/ports";
  std::remove(registry.c_str());

  std::fflush(nullptr);  // do not duplicate buffered output into children
  std::vector<pid_t> children;
  children.reserve(active_list.size());
  for (int rank : active_list) {
    const pid_t pid = ::fork();
    SUBSONIC_REQUIRE_MSG(pid >= 0, "fork failed");
    if (pid == 0)
      child_main(mask, params, method, decomp, active, rank, steps, workdir,
                 registry, sched, threads);  // never returns
    children.push_back(pid);
  }

  bool failed = false;
  for (pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0)
      failed = true;
  }
  std::remove(registry.c_str());
  if (failed)
    throw std::runtime_error("a parallel subprocess exited abnormally");

  // Read the common step counter back from any dump.
  ProcessRunResult result;
  result.processes = static_cast<int>(active_list.size());
  if (!active_list.empty()) {
    const int ghost = required_ghost(method, params.filter_eps > 0.0);
    Domain2D probe(mask, decomp.box(active_list[0]), params, method, ghost);
    restore_domain(probe, workdir + "/rank_" +
                              std::to_string(active_list[0]) + ".dump");
    result.final_step = probe.step();
  }
  return result;
}

}  // namespace subsonic
