#include "src/runtime/process2d.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/comm/tcp_endpoint.hpp"
#include "src/comm/transport.hpp"
#include "src/io/atomic_file.hpp"
#include "src/io/checkpoint.hpp"
#include "src/runtime/epoch_store.hpp"
#include "src/runtime/exchange2d.hpp"
#include "src/solver/schedule.hpp"
#include "src/telemetry/summary.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/check.hpp"
#include "src/util/fault_plan.hpp"
#include "src/util/log.hpp"

namespace subsonic {

namespace {

std::string metrics_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".metrics.jsonl";
}

std::string rank_trace_path(const std::string& workdir, int rank) {
  return workdir + "/rank_" + std::to_string(rank) + ".trace.json";
}

/// Parent-side half of the child-stderr tagging pipe: reads the child's
/// stderr line by line and re-emits each line onto the supervisor's
/// stderr prefixed "[rank r]", so interleaved output from a cohort stays
/// attributable.  Runs until EOF (every write end of the pipe closed,
/// i.e. the child exited); fprintf keeps each line atomic.
void tag_child_stderr(int fd, int rank) {
  std::string pending;
  char buf[512];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      std::fprintf(stderr, "[rank %d] %.*s\n", rank, static_cast<int>(pos),
                   pending.data());
      pending.erase(0, pos + 1);
    }
  }
  if (!pending.empty())
    std::fprintf(stderr, "[rank %d] %s\n", rank, pending.c_str());
  ::close(fd);
}

/// Everything one child process needs beyond the physics inputs: its
/// identity within the current supervisor generation, where to resume
/// from, and the checkpoint/deadline/fault policy.
struct ChildConfig {
  int rank = -1;
  int generation = 0;     ///< supervisor respawn counter (0 = first cohort)
  long target_step = 0;   ///< run until domain.step() reaches this
  long start_step = 0;    ///< step the run as a whole began at
  long restore_epoch = -1;  ///< epoch dump to restore (-1: legacy/fresh)
  int checkpoint_interval = 0;
  int stagger_index = 0;  ///< this rank's index in the active list
  int recv_deadline_ms = 0;
  Scheduling sched = Scheduling::kOverlap;
  int threads = 0;
  bool trace = false;        ///< record Chrome-trace spans in this child
  long long origin_ns = -1;  ///< supervisor's trace origin, so per-rank
                             ///< traces merge onto one timeline
};

/// A checkpoint captured in memory at its epoch step but flushed to disk
/// a few steps later — the paper's orderly *staggered* state saving.
/// Deferring only the write (never the capture) keeps every rank's dump
/// for an epoch at the same logical step.
struct PendingDump {
  long epoch = 0;
  long flush_step = 0;  ///< write once domain.step() reaches this
  std::vector<char> bytes;
};

/// Writes one pending dump.  A matching torn_dump fault writes only the
/// front half of the bytes straight to the final path (no tmp+rename) and
/// kills the process — simulating a rank dying mid-write without the
/// atomic protocol.  Restart must then treat the file as garbage.
void flush_dump(const PendingDump& p, const ChildConfig& cfg,
                const std::string& workdir, const FaultPlan& faults) {
  const std::string path = epoch::dump_path(workdir, cfg.rank, p.epoch);
  if (faults.torn_dump(cfg.rank, p.epoch, cfg.generation)) {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(p.bytes.data(),
               static_cast<std::streamsize>(p.bytes.size() / 2));
    torn.flush();
    ::raise(SIGKILL);
  }
  atomic_write_file(path, p.bytes.data(), p.bytes.size());
}

/// The body of one parallel subprocess: build the local domain (restore
/// its epoch or legacy dump), loop compute/exchange until target_step,
/// saving staggered epoch checkpoints along the way, dump, exit.  Never
/// returns normally — the child must not unwind into the parent's
/// runtime state.  Injected faults fire here: a kill fault SIGKILLs the
/// process at its step *before* pending epoch dumps for that step are
/// flushed, a delay_connect fault stalls the rank before it registers.
[[noreturn]] void child_main(const Mask2D& mask, const FluidParams& params,
                             Method method, const Decomposition2D& decomp,
                             const std::vector<bool>& active,
                             const ChildConfig& cfg,
                             const std::string& workdir,
                             const std::string& registry,
                             const FaultPlan& faults) {
  try {
    telemetry::SessionConfig tel_cfg;
    tel_cfg.trace = cfg.trace;
    tel_cfg.origin_ns = cfg.origin_ns;
    telemetry::Session session(tel_cfg);
    telemetry::Session* const tel = &session;
    set_log_context(cfg.rank);

    const int ghost = required_ghost(method, params.filter_eps > 0.0);
    Domain2D domain(mask, decomp.box(cfg.rank), params, method, ghost,
                    cfg.threads);
    const std::string legacy_dump =
        workdir + "/rank_" + std::to_string(cfg.rank) + ".dump";
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.restore", "ckpt");
      if (cfg.restore_epoch >= 0) {
        restore_domain(domain,
                       epoch::dump_path(workdir, cfg.rank, cfg.restore_epoch));
      } else {
        std::ifstream probe(legacy_dump, std::ios::binary);
        if (probe.good()) restore_domain(domain, legacy_dump);
      }
    }

    const int delay_ms = faults.delay_connect_ms(cfg.rank, cfg.generation);
    if (delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));

    TcpEndpointOptions ep_options;
    ep_options.recv_deadline_ms = cfg.recv_deadline_ms;
    ep_options.metrics = session.metrics_ptr();
    TcpEndpoint endpoint(cfg.rank, decomp.rank_count(), registry,
                         ep_options);
    const auto links =
        make_link_plans2d(decomp, cfg.rank, ghost, params.periodic_x,
                          params.periodic_y, active);
    const auto schedule = make_schedule2d(method);

    auto post_sends = [&](const std::vector<FieldId>& fields, long step,
                          int phase) {
      for (const LinkPlan2D& link : links)
        endpoint.send(link.peer, make_tag(step, phase, link.dir),
                      pack2d(domain, fields, link.send_box));
    };
    auto complete_recvs = [&](const std::vector<FieldId>& fields, long step,
                              int phase) {
      for (const LinkPlan2D& link : links)
        unpack2d(domain, fields, link.recv_box,
                 endpoint.recv(link.peer,
                               make_tag(step, phase, link.peer_dir)));
    };
    auto exchange = [&](const std::vector<FieldId>& fields, long step,
                        int phase) {
      post_sends(fields, step, phase);
      complete_recvs(fields, step, phase);
    };

    // Initial full sync seeds the ghost regions (same as the threaded
    // runtime's reinitialize step).  The tag carries the restore step, so
    // a respawned cohort handshakes consistently regardless of epoch.
    std::vector<FieldId> all_fields{FieldId::kRho, FieldId::kVx,
                                    FieldId::kVy};
    for (int i = 0; i < domain.q(); ++i) all_fields.push_back(population(i));
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "comm.sync", "comm",
                                 domain.step());
      exchange(all_fields, domain.step(), 1023);
    }

    std::vector<PendingDump> pending;
    while (domain.step() < cfg.target_step) {
      const long step = domain.step();
      set_log_context(cfg.rank, step);
      for (size_t i = 0; i < schedule.size(); ++i) {
        const Phase& phase = schedule[i];
        if (phase.kind == Phase::Kind::kCompute) {
          const bool split = cfg.sched == Scheduling::kOverlap &&
                             i + 1 < schedule.size() &&
                             schedule[i + 1].kind == Phase::Kind::kExchange;
          if (split) {
            const Phase& ex = schedule[i + 1];
            const int ex_index = static_cast<int>(i + 1);
            {
              telemetry::ScopedSpan span(
                  tel, cfg.rank,
                  compute_phase_name(phase.compute, ComputePass::kBand),
                  "compute", step);
              run_compute2d(domain, phase.compute, ComputePass::kBand);
            }
            {
              telemetry::ScopedSpan span(tel, cfg.rank, "comm.post_sends",
                                         "comm", step);
              post_sends(ex.fields, step, ex_index);
            }
            {
              telemetry::ScopedSpan span(
                  tel, cfg.rank,
                  compute_phase_name(phase.compute, ComputePass::kInterior),
                  "compute", step);
              run_compute2d(domain, phase.compute, ComputePass::kInterior);
            }
            {
              telemetry::ScopedSpan span(tel, cfg.rank, "comm.complete_recvs",
                                         "comm", step);
              complete_recvs(ex.fields, step, ex_index);
            }
            ++i;
          } else {
            telemetry::ScopedSpan span(tel, cfg.rank,
                                       compute_phase_name(phase.compute),
                                       "compute", step);
            run_compute2d(domain, phase.compute);
          }
        } else {
          telemetry::ScopedSpan span(tel, cfg.rank, "comm.exchange", "comm",
                                     step);
          exchange(phase.fields, step, static_cast<int>(i));
        }
      }
      domain.set_step(step + 1);
      tel->metrics().counter(cfg.rank, "steps").add();
      const long done = domain.step();

      // A kill fault fires before this step's checkpoint work, so the
      // crash always loses whatever the stagger had not yet flushed.
      if (auto ks = faults.kill_step(cfg.rank, cfg.generation))
        if (done - cfg.start_step >= *ks) ::raise(SIGKILL);

      if (cfg.checkpoint_interval > 0 &&
          (done - cfg.start_step) % cfg.checkpoint_interval == 0 &&
          done < cfg.target_step) {
        telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.capture", "ckpt",
                                   done);
        PendingDump p;
        p.epoch = (done - cfg.start_step) / cfg.checkpoint_interval - 1;
        p.flush_step = done + cfg.stagger_index;
        p.bytes = serialize_domain(domain);
        pending.push_back(std::move(p));
      }
      for (size_t i = 0; i < pending.size();) {
        if (done >= pending[i].flush_step) {
          telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.flush", "ckpt",
                                     done);
          flush_dump(pending[i], cfg, workdir, faults);
          pending.erase(pending.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }
    set_log_context(cfg.rank);
    for (const PendingDump& p : pending) {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.flush", "ckpt",
                                 domain.step());
      flush_dump(p, cfg, workdir, faults);
    }

    // Drain the async send queue before _exit: a peer may still be
    // waiting on our final-step messages.
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "comm.flush", "comm",
                                 domain.step());
      endpoint.flush();
    }
    {
      telemetry::ScopedSpan span(tel, cfg.rank, "ckpt.final_save", "ckpt",
                                 domain.step());
      save_domain(domain, legacy_dump);
    }

    // The telemetry streams are this rank's half of the supervisor's
    // run_summary.json; written last so they cover the whole run, and only
    // on a clean exit (a killed rank contributes nothing — the respawned
    // generation rewrites the file).
    session.write_metrics_jsonl(metrics_path(workdir, cfg.rank));
    if (session.tracing())
      session.write_trace_json(rank_trace_path(workdir, cfg.rank));
    ::_exit(0);
  } catch (const peer_lost_error& e) {
    // Expected when a neighbour dies: report and exit so the supervisor
    // can restart the cohort.  Never hang.
    std::fprintf(stderr, "subprocess rank %d lost a peer: %s\n", cfg.rank,
                 e.what());
    ::_exit(3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subprocess rank %d failed: %s\n", cfg.rank,
                 e.what());
    ::_exit(1);
  } catch (...) {
    ::_exit(2);
  }
}

std::string describe_status(int status) {
  if (WIFEXITED(status))
    return "exited " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

/// One spawned cohort: pid-per-active-rank plus reap bookkeeping, and the
/// stderr-tagger thread per child (each drains one pipe until the child
/// exits).
struct Cohort {
  std::vector<pid_t> pids;   // parallel to active_list
  std::vector<bool> reaped;  // parallel to active_list
  std::vector<int> status;   // valid where reaped
  std::vector<std::thread> taggers;
};

}  // namespace

ProcessRunResult run_multiprocess2d(const Mask2D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int steps,
                                    const std::string& workdir,
                                    const ProcessRunOptions& options) {
  params.validate();
  SUBSONIC_REQUIRE(steps >= 1);
  SUBSONIC_REQUIRE(options.checkpoint_interval >= 0);
  SUBSONIC_REQUIRE(options.max_restarts >= 0);
  SUBSONIC_REQUIRE(options.recv_deadline_ms >= 0);
  const Decomposition2D decomp(mask.extents(), jx, jy);
  const auto active_list = active_ranks(decomp, mask);
  std::vector<bool> active(decomp.rank_count(), false);
  for (int r : active_list) active[r] = true;
  const int ghost = required_ghost(method, params.filter_eps > 0.0);

  const FaultPlan faults = options.faults.empty()
                               ? FaultPlan::from_env()
                               : FaultPlan::parse(options.faults);

  // Fresh registry and fresh epoch state per run: ports are ephemeral and
  // stale entries would point at dead listeners; stale epoch dumps or a
  // stale MANIFEST belong to some previous run's step numbering.
  const std::string registry = workdir + "/ports";
  std::remove(registry.c_str());
  epoch::clear_run_state(workdir);

  // Stale telemetry belongs to a previous run's step numbering; the
  // aggregation below must only ever see this run's streams.
  for (int rank = 0; rank < decomp.rank_count(); ++rank) {
    std::remove(metrics_path(workdir, rank).c_str());
    std::remove(rank_trace_path(workdir, rank).c_str());
  }
  std::remove((workdir + "/trace.json").c_str());
  std::remove((workdir + "/run_summary.json").c_str());
  std::remove((workdir + "/supervisor.metrics.jsonl").c_str());

  // The supervisor's own session: every child inherits its trace origin,
  // so the merged trace.json has one consistent timeline across ranks.
  const bool trace_on =
      options.trace > 0 ||
      (options.trace < 0 && telemetry::trace_enabled_from_env());
  telemetry::SessionConfig sup_cfg;
  sup_cfg.trace = trace_on;
  telemetry::Session supervisor(sup_cfg);

  // Continuation runs resume from the legacy per-rank dumps; probe the
  // step they carry so epochs and kill-step offsets count from there.
  long start_step = 0;
  if (!active_list.empty()) {
    try {
      const CheckpointInfo info = inspect_checkpoint(
          workdir + "/rank_" + std::to_string(active_list[0]) + ".dump");
      start_step = info.step;
    } catch (const std::exception&) {
      start_step = 0;  // absent or unreadable: fresh run
    }
  }
  const long target_step = start_step + steps;

  ProcessRunResult result;
  result.processes = static_cast<int>(active_list.size());
  result.final_step = target_step;
  if (active_list.empty()) return result;

  int generation = 0;
  long committed_epoch = -1;  // newest MANIFEST-committed epoch

  // Verify-and-commit: an epoch becomes restorable only once every
  // active rank's dump for it exists, passes its CRC, and agrees on the
  // step counter.  Called from the supervision loop (cheap when the next
  // epoch is not complete yet) and once after any cohort ends.
  auto poll_epochs = [&]() {
    if (options.checkpoint_interval <= 0) return;
    for (;;) {
      const long e = committed_epoch + 1;
      long step = -1;
      bool complete = true;
      for (int rank : active_list) {
        try {
          const CheckpointInfo info =
              inspect_checkpoint(epoch::dump_path(workdir, rank, e));
          if (step < 0) step = info.step;
          complete = complete && info.step == step;
        } catch (const std::exception&) {
          complete = false;  // missing, torn, or corrupt: not this epoch
        }
        if (!complete) break;
      }
      if (!complete) return;
      epoch::Manifest m;
      m.epoch = e;
      m.step = step;
      m.ranks = active_list;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.commit", "ckpt",
                                   step);
        epoch::commit_manifest(workdir, m);
      }
      committed_epoch = e;
      {
        telemetry::ScopedSpan span(&supervisor, -1, "ckpt.gc", "ckpt", step);
        epoch::gc_epochs(workdir, active_list, e);
      }
    }
  };

  auto spawn_cohort = [&](long restore_epoch) -> Cohort {
    std::remove(registry.c_str());
    std::fflush(nullptr);  // do not duplicate buffered output into children
    Cohort cohort;
    cohort.pids.reserve(active_list.size());
    for (size_t i = 0; i < active_list.size(); ++i) {
      ChildConfig cfg;
      cfg.rank = active_list[i];
      cfg.generation = generation;
      cfg.target_step = target_step;
      cfg.start_step = start_step;
      cfg.restore_epoch = restore_epoch;
      cfg.checkpoint_interval = options.checkpoint_interval;
      cfg.stagger_index = static_cast<int>(i);
      cfg.recv_deadline_ms = options.recv_deadline_ms;
      cfg.sched = options.sched;
      cfg.threads = options.threads;
      cfg.trace = trace_on;
      cfg.origin_ns = supervisor.origin_ns();
      int err_pipe[2];
      SUBSONIC_REQUIRE_MSG(::pipe(err_pipe) == 0, "pipe failed");
      const pid_t pid = ::fork();
      SUBSONIC_REQUIRE_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        // Route the child's stderr through the tagging pipe so the parent
        // can prefix every line with the rank.
        ::dup2(err_pipe[1], 2);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        child_main(mask, params, method, decomp, active, cfg, workdir,
                   registry, faults);  // never returns
      }
      ::close(err_pipe[1]);
      cohort.taggers.emplace_back(tag_child_stderr, err_pipe[0],
                                  active_list[i]);
      cohort.pids.push_back(pid);
    }
    cohort.reaped.assign(cohort.pids.size(), false);
    cohort.status.assign(cohort.pids.size(), 0);
    return cohort;
  };

  // Tagger threads hit EOF once their child is gone; join them only after
  // every child in the cohort is reaped (both outcomes).
  auto join_taggers = [](Cohort& cohort) {
    for (std::thread& t : cohort.taggers)
      if (t.joinable()) t.join();
  };

  for (;;) {
    Cohort cohort = spawn_cohort(generation == 0 ? -1 : committed_epoch);

    // Supervise: reap out of order with WNOHANG so a crash in any rank is
    // seen immediately, no matter where it falls in pid order.
    bool failure = false;
    size_t live = cohort.pids.size();
    while (live > 0 && !failure) {
      bool progressed = false;
      for (size_t i = 0; i < cohort.pids.size(); ++i) {
        if (cohort.reaped[i]) continue;
        int status = 0;
        const pid_t r = ::waitpid(cohort.pids[i], &status, WNOHANG);
        if (r == cohort.pids[i]) {
          cohort.reaped[i] = true;
          cohort.status[i] = status;
          --live;
          progressed = true;
          if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            failure = true;
        }
      }
      poll_epochs();
      if (!progressed && !failure && live > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    if (failure) {
      // First casualty seen: kill the whole cohort.  Survivors may be
      // wedged waiting on the dead rank (until their recv deadline), so
      // never wait for them to exit on their own.
      for (size_t i = 0; i < cohort.pids.size(); ++i)
        if (!cohort.reaped[i]) ::kill(cohort.pids[i], SIGKILL);
      for (size_t i = 0; i < cohort.pids.size(); ++i) {
        if (cohort.reaped[i]) continue;
        int status = 0;
        if (::waitpid(cohort.pids[i], &status, 0) == cohort.pids[i]) {
          cohort.reaped[i] = true;
          cohort.status[i] = status;
        }
      }
      join_taggers(cohort);
      // Dumps flushed just before the crash may complete another epoch.
      poll_epochs();

      if (result.restarts >= options.max_restarts) {
        std::remove(registry.c_str());
        std::vector<RankFailure> failures;
        std::ostringstream msg;
        msg << "parallel run failed after " << result.restarts
            << " restart(s);";
        for (size_t i = 0; i < cohort.pids.size(); ++i) {
          const int status = cohort.status[i];
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
          RankFailure f;
          f.rank = active_list[i];
          f.wait_status = status;
          f.detail = describe_status(status);
          msg << " rank " << f.rank << ": " << f.detail << ';';
          failures.push_back(std::move(f));
        }
        throw ProcessRunError(msg.str(), std::move(failures));
      }
      ++result.restarts;
      ++generation;
      supervisor.metrics().counter(-1, "restart.count").add();
      continue;  // respawn from the newest committed epoch (or scratch)
    }

    // Clean finish.
    join_taggers(cohort);
    poll_epochs();
    break;
  }
  std::remove(registry.c_str());
  result.committed_epoch = committed_epoch;

  // Read the common step counter back from any dump.
  {
    Domain2D probe(mask, decomp.box(active_list[0]), params, method, ghost);
    restore_domain(probe, workdir + "/rank_" +
                              std::to_string(active_list[0]) + ".dump");
    result.final_step = probe.step();
  }

  // Aggregate the telemetry every rank streamed to disk: reconstruct the
  // per-rank WorkerStats for the caller, and write run_summary.json with
  // the measured T_calc / T_com next to the paper model's predicted f.
  std::vector<telemetry::RankMetrics> rank_metrics;
  rank_metrics.reserve(active_list.size());
  for (int rank : active_list) {
    std::vector<telemetry::RankMetrics> parsed;
    try {
      parsed = telemetry::read_metrics_jsonl(metrics_path(workdir, rank));
    } catch (const std::exception&) {
      // A missing or unreadable stream degrades that rank to zeros; the
      // simulation result itself is already safely on disk.
    }
    bool found = false;
    for (telemetry::RankMetrics& rm : parsed) {
      if (rm.rank != rank) continue;
      rank_metrics.push_back(std::move(rm));
      found = true;
      break;
    }
    if (!found) {
      telemetry::RankMetrics empty;
      empty.rank = rank;
      rank_metrics.push_back(std::move(empty));
    }
  }
  result.rank_stats.reserve(rank_metrics.size());
  for (const telemetry::RankMetrics& rm : rank_metrics) {
    WorkerStats ws;
    ws.compute_s = rm.t_calc();
    ws.comm_s = rm.t_com();
    result.rank_stats.push_back(ws);
  }

  telemetry::RunModelInputs model;
  model.dims = 2;
  model.processes = static_cast<int>(active_list.size());
  double owned_nodes = 0;
  for (int rank : active_list)
    owned_nodes += static_cast<double>(decomp.box(rank).count());
  model.nodes_per_rank = owned_nodes / static_cast<double>(active_list.size());
  // Doubles shipped per boundary node per step, from the schedule actually
  // run: each exchange phase ships |fields| doubles per node per ghost
  // layer.
  double doubles_per_node = 0;
  for (const Phase& phase : make_schedule2d(method))
    if (phase.kind == Phase::Kind::kExchange)
      doubles_per_node += static_cast<double>(phase.fields.size());
  model.comm_doubles_per_node = doubles_per_node * ghost;

  const telemetry::RunSummary summary =
      telemetry::summarize_run(rank_metrics, model, result.restarts);
  result.summary_path = workdir + "/run_summary.json";
  telemetry::write_run_summary(summary, result.summary_path);
  supervisor.write_metrics_jsonl(workdir + "/supervisor.metrics.jsonl");
  if (trace_on) {
    std::vector<std::string> traces;
    traces.reserve(active_list.size());
    for (int rank : active_list)
      traces.push_back(rank_trace_path(workdir, rank));
    telemetry::merge_chrome_traces(traces, workdir + "/trace.json");
  }
  return result;
}

ProcessRunResult run_multiprocess2d(const Mask2D& mask,
                                    const FluidParams& params, Method method,
                                    int jx, int jy, int steps,
                                    const std::string& workdir,
                                    Scheduling sched, int threads) {
  ProcessRunOptions options;
  options.sched = sched;
  options.threads = threads;
  return run_multiprocess2d(mask, params, method, jx, jy, steps, workdir,
                            options);
}

}  // namespace subsonic
