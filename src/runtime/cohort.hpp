// The child half of the supervised process runtime, dimension-generic.
// A "cohort" is one spawned generation of rank processes; this header
// carries the per-child configuration, the staggered-checkpoint pending
// queue, and child_main<Dim> — the body every forked rank runs: build the
// local domain (restore its epoch or legacy dump), loop compute/exchange
// until target_step, save staggered epoch checkpoints, dump, exit.  The
// supervisor (supervisor.hpp) forks, reaps and respawns cohorts.
#pragma once

#include <sys/types.h>

#include <string>
#include <thread>
#include <vector>

#include "src/runtime/domain_traits.hpp"
#include "src/solver/pass.hpp"
#include "src/util/fault_plan.hpp"

namespace subsonic {
namespace cohort {

/// "rank_<r>.metrics.jsonl" in `workdir`: one child's metrics stream.
std::string metrics_path(const std::string& workdir, int rank);

/// "rank_<r>.trace.json" in `workdir`: one child's Chrome-trace capture.
std::string rank_trace_path(const std::string& workdir, int rank);

/// "rank_<r>.dump" in `workdir`: the final-state dump a clean child
/// leaves behind (and restores from on a continuation run).
std::string legacy_dump_path(const std::string& workdir, int rank);

/// "block_<b>.dump" in `workdir`: final-state dump of one block of the
/// over-decomposed runtime.  Keyed by block id — never by rank — so a
/// continuation run restores correctly under a rewritten owner map.
std::string legacy_block_dump_path(const std::string& workdir, int block);

/// Parent-side half of the child-stderr tagging pipe: reads the child's
/// stderr line by line and re-emits each line onto the supervisor's
/// stderr prefixed "[rank r]", so interleaved output from a cohort stays
/// attributable.  Runs until EOF (every write end of the pipe closed,
/// i.e. the child exited); fprintf keeps each line atomic.
void tag_child_stderr(int fd, int rank);

/// Everything one child process needs beyond the physics inputs: its
/// identity within the current supervisor generation, where to resume
/// from, and the checkpoint/deadline/fault policy.
struct ChildConfig {
  int rank = -1;
  int generation = 0;     ///< supervisor respawn counter (0 = first cohort)
  long target_step = 0;   ///< run until domain.step() reaches this
  long start_step = 0;    ///< step the run as a whole began at
  /// Step the whole *run* ends at (>= target_step; the blocked runtime
  /// runs in segments, so one cohort's target may sit mid-run).  Epoch
  /// checkpoints are captured up to the run's end but not at it — the
  /// final state is the legacy dump — which keeps the epoch numbering
  /// gap-free across segment boundaries.
  long final_target = 0;
  long restore_epoch = -1;  ///< epoch dump to restore (-1: legacy/fresh)
  int checkpoint_interval = 0;
  int stagger_index = 0;  ///< this rank's index in the active list
  int recv_deadline_ms = 0;
  Scheduling sched = Scheduling::kOverlap;
  int threads = 0;
  bool trace = false;        ///< record Chrome-trace spans in this child
  long long origin_ns = -1;  ///< supervisor's trace origin, so per-rank
                             ///< traces merge onto one timeline
  /// Liveness plumbing (liveness.hpp): write end of the heartbeat pipe
  /// and read end of the supervisor control pipe; -1 = not supervised
  /// (no beacons, no in-process rollback).
  int heartbeat_fd = -1;
  int control_fd = -1;
  /// Socket-channel mode: the supervisor's rendezvous endpoint
  /// ("rdv:<host>:<port>").  When set and the fds above are -1, the child
  /// dials its heartbeat and control channels back through the rendezvous
  /// service instead of inheriting pipes — the transport for launchers
  /// whose children share no file descriptors with the supervisor.
  std::string channel_endpoint;
  int beacon_interval_ms = 50;  ///< min spacing of kWait beacons
  /// Steps between periodic telemetry publications: a delta append to the
  /// rank's metrics stream plus a metrics frame up the heartbeat pipe.
  /// 0 = off (final dump only, the pre-introspection behaviour).
  int metrics_flush_interval = 0;
};

/// A checkpoint captured in memory at its epoch step but flushed to disk
/// a few steps later — the paper's orderly *staggered* state saving.
/// Deferring only the write (never the capture) keeps every rank's dump
/// for an epoch at the same logical step.
struct PendingDump {
  long epoch = 0;
  long flush_step = 0;  ///< write once domain.step() reaches this
  std::vector<char> bytes;
};

/// Writes one pending dump.  A matching torn_dump fault writes only the
/// front half of the bytes straight to the final path (no tmp+rename) and
/// kills the process — simulating a rank dying mid-write without the
/// atomic protocol.  Restart must then treat the file as garbage.
void flush_dump(const PendingDump& p, const ChildConfig& cfg,
                const std::string& workdir, const FaultPlan& faults);

/// Per-block pending checkpoint of the over-decomposed runtime: captured
/// for every local block at the epoch step, flushed staggered.
struct PendingBlockDump {
  int block = -1;
  long epoch = 0;
  long flush_step = 0;
  std::vector<char> bytes;
};

/// Writes one pending block dump; the torn_dump fault tears it exactly as
/// flush_dump does (half-written, no atomic rename, SIGKILL).
void flush_block_dump(const PendingBlockDump& p, const ChildConfig& cfg,
                      const std::string& workdir, const FaultPlan& faults);

/// One spawned cohort: pid-per-active-rank plus reap bookkeeping, and the
/// stderr-tagger thread per child (each drains one pipe until the child
/// exits).
struct Cohort {
  std::vector<pid_t> pids;   // parallel to active_list
  std::vector<bool> reaped;  // parallel to active_list
  std::vector<int> status;   // valid where reaped
  std::vector<std::thread> taggers;
};

/// The body of one parallel subprocess.  Never returns normally — the
/// child must not unwind into the parent's runtime state.  Injected
/// faults fire here: a kill fault SIGKILLs the process at its step
/// *before* pending epoch dumps for that step are flushed, a
/// delay_connect fault stalls the rank before it registers.
///
/// `registry` is the *base* port-registry path: each recovery round uses
/// liveness::registry_for(registry, round).  The child runs rounds in a
/// loop — on a SIGUSR1 rollback order from the supervisor it abandons
/// the current round (endpoint_aborted out of any blocking wait), reads
/// the new round + restore epoch from control_fd, rebuilds its Domain
/// from scratch and rejoins, which is bitwise identical to being
/// re-forked.  SIGTERM flushes the telemetry stream and exits with
/// liveness::kTermAckExit.
template <int Dim>
[[noreturn]] void child_main(const typename DomainTraits<Dim>::Mask& mask,
                             const FluidParams& params, Method method,
                             const typename DomainTraits<Dim>::Decomp& decomp,
                             const std::vector<bool>& active,
                             const ChildConfig& cfg,
                             const std::string& workdir,
                             const std::string& registry,
                             const FaultPlan& faults);

extern template void child_main<2>(const Mask2D&, const FluidParams&, Method,
                                   const Decomposition2D&,
                                   const std::vector<bool>&,
                                   const ChildConfig&, const std::string&,
                                   const std::string&, const FaultPlan&);
extern template void child_main<3>(const Mask3D&, const FluidParams&, Method,
                                   const Decomposition3D&,
                                   const std::vector<bool>&,
                                   const ChildConfig&, const std::string&,
                                   const std::string&, const FaultPlan&);

/// The over-decomposed counterpart of child_main: one rank process
/// stepping every block the owner map assigns to it (a BlockSet) over the
/// shared TcpEndpoint, with per-*block* epoch checkpoints and final
/// dumps.  Supports the same kill / delay_connect / torn_dump faults plus
/// the slow fault (a busy-spin charged into the per-block compute
/// timers, making the rank look like a genuinely slow host to the
/// rebalancer).
template <int Dim>
[[noreturn]] void child_main_blocked(
    const typename DomainTraits<Dim>::Mask& mask, const FluidParams& params,
    Method method, const typename DomainTraits<Dim>::BlockDecomp& bd,
    const ChildConfig& cfg, const std::string& workdir,
    const std::string& registry, const FaultPlan& faults);

extern template void child_main_blocked<2>(const Mask2D&, const FluidParams&,
                                           Method, const BlockDecomposition2D&,
                                           const ChildConfig&,
                                           const std::string&,
                                           const std::string&,
                                           const FaultPlan&);
extern template void child_main_blocked<3>(const Mask3D&, const FluidParams&,
                                           Method, const BlockDecomposition3D&,
                                           const ChildConfig&,
                                           const std::string&,
                                           const std::string&,
                                           const FaultPlan&);

}  // namespace cohort
}  // namespace subsonic
