// Process placement, factored out of the supervisors.  The paper's
// job-submit program "begins a parallel subprocess on each workstation";
// a Launcher is exactly that seam: the supervisor describes the child it
// wants (ChildSpec) and the launcher decides *how* a process comes to
// exist, returning a ChildHandle the liveness engine can signal and reap.
//
//   * ForkLauncher — today's single-host mechanics, bitwise-preserving:
//     fork(), redirect stderr into the tagging pipe, close the fds that
//     belong to other children, run the child body in-process.
//   * ExecLauncher — posix_spawn of the subsonic_child binary, which
//     reconstructs its ChildConfig from argv and its world from the
//     cohort spec file.  The child inherits *no* supervisor state beyond
//     the explicitly-numbered channel fds, which is the proof obligation
//     for the next launcher in line (SSH/agent onto a remote host, where
//     inheritance is impossible by construction).
//
// Selection: ProcessRunOptions::launcher, else SUBSONIC_LAUNCHER
// ("fork" | "exec"), else fork.
#pragma once

#include <sys/types.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/cohort.hpp"

namespace subsonic::launcher {

/// Everything a launcher needs to start one rank process.
struct ChildSpec {
  int rank = -1;
  std::string host;  ///< placement tag, threaded into liveness records
  cohort::ChildConfig cfg;
  std::string workdir;
  std::string registry;   ///< rendezvous endpoint (or registry file base)
  std::string spec_path;  ///< cohort spec file (exec children rebuild from it)
  std::string faults;     ///< fault spec string ("" = child reads env)
  int dim = 2;
  bool blocked = false;
  int stderr_fd = -1;  ///< dup2'd onto fd 2 in the child (tagging pipe)
  /// Fds that belong to the supervisor or to sibling children; the child
  /// must not hold them open (fork closes them, exec never passes them).
  std::vector<int> close_in_child;
  /// The child body for in-process launchers; receives the final
  /// ChildConfig and never returns.  Exec launchers ignore it — the
  /// subsonic_child binary is the body.
  std::function<void(const cohort::ChildConfig&)> entry;
};

struct ChildHandle {
  pid_t pid = -1;
  int rank = -1;
  std::string host;
};

/// A launch that failed before a child process existed (dead host,
/// missing binary, injected spawn_fail) — the supervisor surfaces it as
/// a clean ProcessRunError naming the rank and host.
class SpawnError : public std::runtime_error {
 public:
  SpawnError(const std::string& what, int rank_in, std::string host_in)
      : std::runtime_error(what), rank(rank_in), host(std::move(host_in)) {}
  int rank;
  std::string host;
};

class Launcher {
 public:
  virtual ~Launcher() = default;

  /// "fork" / "exec" — the tag shown in /status and subsonic_top.
  virtual const char* name() const = 0;

  /// Starts one child; throws SpawnError when no process came to exist.
  virtual ChildHandle spawn(const ChildSpec& spec) = 0;

  /// Signal/reap by handle; base implementations use kill()/waitpid(),
  /// which is correct for any launcher whose children are local processes.
  virtual void signal(const ChildHandle& h, int sig);
  virtual pid_t reap(const ChildHandle& h, int* status, bool block);
};

/// fork() + run the child body in-process: the child shares the parent's
/// address space copy, so masks/decompositions need no serialization.
class ForkLauncher : public Launcher {
 public:
  const char* name() const override { return "fork"; }
  ChildHandle spawn(const ChildSpec& spec) override;
};

/// posix_spawn of the subsonic_child binary (SUBSONIC_CHILD_BIN env, else
/// the build-time default).  Channel fds survive by number; everything
/// else the child needs travels through argv and the cohort spec file.
class ExecLauncher : public Launcher {
 public:
  /// Throws std::runtime_error when no child binary can be resolved.
  ExecLauncher();
  const char* name() const override { return "exec"; }
  ChildHandle spawn(const ChildSpec& spec) override;

  /// The resolved child binary path ("" when none is configured).
  static std::string child_binary();

 private:
  std::string binary_;
};

/// Resolves the launcher request: explicit name, else SUBSONIC_LAUNCHER,
/// else "fork".  Throws std::invalid_argument on an unknown name.
std::string resolve_launcher_name(const std::string& requested);

std::unique_ptr<Launcher> make_launcher(const std::string& requested);

/// This machine's host tag for liveness records (gethostname, falling
/// back to "localhost").
std::string local_host_tag();

}  // namespace subsonic::launcher
