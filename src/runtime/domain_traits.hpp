// The dimension axis of the runtime, factored into one traits class.  The
// paper's runtime design — subregion processes, ghost exchange, near-
// synchronization, staggered saving (sections 3-4) — is dimension-
// independent; only the concrete grid types are not.  DomainTraits<Dim>
// collects exactly those concrete pieces (domain/mask/decomposition/link
// types, pack/unpack, schedule, periodic wraps, quiescent defaults), so
// the serial, threaded-parallel and supervised-process drivers can each be
// written once as a template and instantiated for 2D and 3D.
#pragma once

#include <vector>

#include "src/decomp/block_decomposition.hpp"
#include "src/decomp/decomposition.hpp"
#include "src/geometry/mask.hpp"
#include "src/runtime/exchange2d.hpp"
#include "src/runtime/exchange3d.hpp"
#include "src/solver/domain2d.hpp"
#include "src/solver/domain3d.hpp"
#include "src/solver/lbm2d.hpp"
#include "src/solver/lbm3d.hpp"
#include "src/solver/schedule.hpp"
#include "src/util/check.hpp"

namespace subsonic {

/// Subregion grid of a decomposition, dimension-agnostic: the 2D runtimes
/// require jz == 1 (the paper's (J x K) decompositions; (J x K x L) in 3D).
struct GridShape {
  int jx = 1;
  int jy = 1;
  int jz = 1;
};

template <int Dim>
struct DomainTraits;

template <>
struct DomainTraits<2> {
  static constexpr int kDims = 2;
  /// Base of the reinitialize sync-epoch counter; the 2D and 3D bases are
  /// disjoint so sync tags can never collide on a shared transport.
  static constexpr long kSyncEpochBase = 0;

  using Mask = Mask2D;
  using Domain = Domain2D;
  using Decomp = Decomposition2D;
  using BlockDecomp = BlockDecomposition2D;
  using Box = Box2;
  using LinkPlan = LinkPlan2D;
  using Field = PaddedField2D<double>;

  static Decomp make_decomposition(const Mask& mask, const GridShape& grid) {
    SUBSONIC_REQUIRE_MSG(grid.jz == 1, "2D decomposition requires jz == 1");
    return Decomp(mask.extents(), grid.jx, grid.jy);
  }

  /// Over-decomposition of the same grid into ~side^2 blocks seeded onto
  /// the (jx x jy) rank grid; `ghost` bounds the smallest legal block.
  static BlockDecomp make_block_decomposition(const Mask& mask,
                                              const GridShape& grid, int side,
                                              int ghost) {
    SUBSONIC_REQUIRE_MSG(grid.jz == 1, "2D decomposition requires jz == 1");
    return BlockDecomp(mask, grid.jx, grid.jy, side, ghost);
  }

  /// Link plans of one *block* over the fine block grid — the generic
  /// make_link_plans with "rank" read as "block id"; neighbours that are
  /// all-solid blocks are dropped exactly like inactive ranks.
  static std::vector<LinkPlan> make_block_links(const BlockDecomp& bd,
                                                int block, int ghost,
                                                const FluidParams& p) {
    return make_link_plans2d(bd.blocks(), block, ghost, p.periodic_x,
                             p.periodic_y, bd.active());
  }

  static std::vector<Phase> make_schedule(Method method) {
    return make_schedule2d(method);
  }

  static std::vector<LinkPlan> make_links(const Decomp& d, int rank,
                                          int ghost, const FluidParams& p,
                                          const std::vector<bool>& active) {
    return make_link_plans2d(d, rank, ghost, p.periodic_x, p.periodic_y,
                             active);
  }

  static std::vector<double> pack(const Domain& dom,
                                  const std::vector<FieldId>& fields,
                                  Box box) {
    return pack2d(dom, fields, box);
  }

  static void unpack(Domain& dom, const std::vector<FieldId>& fields,
                     Box box, const std::vector<double>& payload) {
    unpack2d(dom, fields, box, payload);
  }

  static void run_compute(Domain& d, ComputeKind kind,
                          ComputePass pass = ComputePass::kFull) {
    run_compute2d(d, kind, pass);
  }

  static std::vector<FieldId> macro_fields() {
    return {FieldId::kRho, FieldId::kVx, FieldId::kVy};
  }

  static void set_equilibrium(Domain& d) { lbm2d::set_equilibrium_both(d); }

  /// Value an inactive (all-solid) subregion contributes to a gather —
  /// what the serial boundary pass holds at wall nodes.
  static double quiescent(FieldId id, const FluidParams& p) {
    if (id == FieldId::kRho) return p.rho0;
    if (is_population(id))
      return lbm2d::equilibrium(population_index(id), p.rho0, 0.0, 0.0);
    return 0.0;
  }

  static bool thinner_than_ghost(const Box& b, int ghost) {
    return b.width() < ghost || b.height() < ghost;
  }

  /// Periodic wrap of one field's ghost layers (serial runs; no-op without
  /// periodicity).  Columns wrap first over interior rows only; the y wrap
  /// copies whole rows including the x padding, completing the corners.
  static void fill_periodic(const Domain& d, Field& u) {
    const FluidParams& p = d.params();
    const int g = d.ghost();
    const int nx = d.nx();
    const int ny = d.ny();
    if (p.periodic_x) {
      for (int y = 0; y < ny; ++y)
        for (int k = 1; k <= g; ++k) {
          u(-k, y) = u(nx - k, y);
          u(nx - 1 + k, y) = u(k - 1, y);
        }
    }
    if (p.periodic_y) {
      for (int k = 1; k <= g; ++k)
        for (int x = -g; x < nx + g; ++x) {
          u(x, -k) = u(x, ny - k);
          u(x, ny - 1 + k) = u(x, k - 1);
        }
    }
  }

  /// Copies the interior of `dom`'s field `id` into the global-coordinate
  /// window `b` of `out` (the per-rank half of a gather).
  static void copy_interior(Field& out, const Domain& dom, FieldId id,
                            const Box& b) {
    const Field& u = dom.field(id);
    for (int y = 0; y < b.height(); ++y)
      for (int x = 0; x < b.width(); ++x) out(b.x0 + x, b.y0 + y) = u(x, y);
  }

  static Field make_global_field(const Decomp& d) { return Field(d.global(), 0); }

  /// True when a dump header describes this rank's subregion of `d`
  /// (dimension, window); the z components stay zero in 2D headers.
  template <typename CheckpointInfoT>
  static bool box_matches(const CheckpointInfoT& info, const Box& b) {
    return info.dim == 2 && info.box[0] == b.x0 && info.box[1] == b.y0 &&
           info.box[3] == b.x1 && info.box[4] == b.y1;
  }
};

template <>
struct DomainTraits<3> {
  static constexpr int kDims = 3;
  static constexpr long kSyncEpochBase = 1L << 20;  // disjoint from 2D

  using Mask = Mask3D;
  using Domain = Domain3D;
  using Decomp = Decomposition3D;
  using BlockDecomp = BlockDecomposition3D;
  using Box = Box3;
  using LinkPlan = LinkPlan3D;
  using Field = PaddedField3D<double>;

  static Decomp make_decomposition(const Mask& mask, const GridShape& grid) {
    return Decomp(mask.extents(), grid.jx, grid.jy, grid.jz);
  }

  static BlockDecomp make_block_decomposition(const Mask& mask,
                                              const GridShape& grid, int side,
                                              int ghost) {
    return BlockDecomp(mask, grid.jx, grid.jy, grid.jz, side, ghost);
  }

  static std::vector<LinkPlan> make_block_links(const BlockDecomp& bd,
                                                int block, int ghost,
                                                const FluidParams& p) {
    return make_link_plans3d(bd.blocks(), block, ghost, p.periodic_x,
                             p.periodic_y, p.periodic_z, bd.active());
  }

  static std::vector<Phase> make_schedule(Method method) {
    return make_schedule3d(method);
  }

  static std::vector<LinkPlan> make_links(const Decomp& d, int rank,
                                          int ghost, const FluidParams& p,
                                          const std::vector<bool>& active) {
    return make_link_plans3d(d, rank, ghost, p.periodic_x, p.periodic_y,
                             p.periodic_z, active);
  }

  static std::vector<double> pack(const Domain& dom,
                                  const std::vector<FieldId>& fields,
                                  Box box) {
    return pack3d(dom, fields, box);
  }

  static void unpack(Domain& dom, const std::vector<FieldId>& fields,
                     Box box, const std::vector<double>& payload) {
    unpack3d(dom, fields, box, payload);
  }

  static void run_compute(Domain& d, ComputeKind kind,
                          ComputePass pass = ComputePass::kFull) {
    run_compute3d(d, kind, pass);
  }

  static std::vector<FieldId> macro_fields() {
    return {FieldId::kRho, FieldId::kVx, FieldId::kVy, FieldId::kVz};
  }

  static void set_equilibrium(Domain& d) { lbm3d::set_equilibrium_both(d); }

  static double quiescent(FieldId id, const FluidParams& p) {
    if (id == FieldId::kRho) return p.rho0;
    if (is_population(id))
      return lbm3d::equilibrium(population_index(id), p.rho0, 0.0, 0.0, 0.0);
    return 0.0;
  }

  static bool thinner_than_ghost(const Box& b, int ghost) {
    return b.width() < ghost || b.height() < ghost || b.depth() < ghost;
  }

  /// Wrap axis by axis; each later axis copies whole slabs including the
  /// padding already filled by the earlier axes, which completes edges and
  /// corners.
  static void fill_periodic(const Domain& d, Field& u) {
    const FluidParams& p = d.params();
    const int g = d.ghost();
    const int nx = d.nx();
    const int ny = d.ny();
    const int nz = d.nz();
    if (p.periodic_x) {
      for (int z = 0; z < nz; ++z)
        for (int y = 0; y < ny; ++y)
          for (int k = 1; k <= g; ++k) {
            u(-k, y, z) = u(nx - k, y, z);
            u(nx - 1 + k, y, z) = u(k - 1, y, z);
          }
    }
    if (p.periodic_y) {
      for (int z = 0; z < nz; ++z)
        for (int k = 1; k <= g; ++k)
          for (int x = -g; x < nx + g; ++x) {
            u(x, -k, z) = u(x, ny - k, z);
            u(x, ny - 1 + k, z) = u(x, k - 1, z);
          }
    }
    if (p.periodic_z) {
      for (int k = 1; k <= g; ++k)
        for (int y = -g; y < ny + g; ++y)
          for (int x = -g; x < nx + g; ++x) {
            u(x, y, -k) = u(x, y, nz - k);
            u(x, y, nz - 1 + k) = u(x, y, k - 1);
          }
    }
  }

  static void copy_interior(Field& out, const Domain& dom, FieldId id,
                            const Box& b) {
    const Field& u = dom.field(id);
    for (int z = 0; z < b.depth(); ++z)
      for (int y = 0; y < b.height(); ++y)
        for (int x = 0; x < b.width(); ++x)
          out(b.x0 + x, b.y0 + y, b.z0 + z) = u(x, y, z);
  }

  static Field make_global_field(const Decomp& d) { return Field(d.global(), 0); }

  template <typename CheckpointInfoT>
  static bool box_matches(const CheckpointInfoT& info, const Box& b) {
    return info.dim == 3 && info.box[0] == b.x0 && info.box[1] == b.y0 &&
           info.box[2] == b.z0 && info.box[3] == b.x1 &&
           info.box[4] == b.y1 && info.box[5] == b.z1;
  }
};

}  // namespace subsonic
