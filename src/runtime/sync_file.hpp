// The synchronization algorithm of Appendix B, implemented literally:
// on a migration request every process appends its current integration
// step to a shared file (using file locking and append mode), then reads
// the file to find the largest step T_max among all processes, and agrees
// to pause at synchronization step T_max + 1 — the smallest step every
// process can still reach (no process can be past it, appendix A).
#pragma once

#include <string>
#include <vector>

namespace subsonic {

class SyncFile {
 public:
  /// Opens (creating if needed) the shared synchronization file.
  explicit SyncFile(std::string path);

  /// Appends "rank step" under an exclusive lock (O_APPEND semantics:
  /// concurrent writers never interleave within a record).
  void announce(int rank, long step) const;

  /// Reads every announced (rank, step) record.
  std::vector<std::pair<int, long>> read_all() const;

  /// The agreed synchronization step once `expected` processes have
  /// announced: max step + 1.  Returns -1 while announcements are missing.
  long sync_step(int expected) const;

  /// Removes the file (done by the monitor after a completed migration).
  void clear() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace subsonic
