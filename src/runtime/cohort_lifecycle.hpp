// The cohort-lifecycle module: everything the two supervisors used to
// duplicate around "a rank process exists" lives here once — launcher
// selection (fork | exec), the rendezvous service the cohort coordinates
// through, stderr tagging, spawn-fault injection, per-round registry
// retirement, harvest of dead ranks' telemetry, and the failure report.
// The supervisors keep what is genuinely theirs (decomposition, epochs,
// segments, rebalancing, aggregation) and drive this object through the
// liveness engine's hooks.
#pragma once

#include <sys/types.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/comm/rendezvous.hpp"
#include "src/runtime/cohort.hpp"
#include "src/runtime/cohort_spec.hpp"
#include "src/runtime/launcher.hpp"
#include "src/runtime/liveness.hpp"

namespace subsonic {
namespace liveness {
class StatusBoard;
}

namespace cohort {

class Lifecycle {
 public:
  struct Setup {
    std::string workdir;
    bool trace_on = false;
    int dim = 2;
    bool blocked = false;
    /// Launcher request: explicit name, else SUBSONIC_LAUNCHER, else fork.
    std::string launcher;
    /// The options.faults string, passed to exec children verbatim ("" =
    /// the child resolves SUBSONIC_FAULTS itself, same as the supervisor).
    std::string faults_spec;
    const FaultPlan* faults = nullptr;
    const LivenessOptions* liveness = nullptr;
  };

  /// Resolves the launcher and starts the rendezvous service.  Throws
  /// std::invalid_argument on an unknown launcher name, std::runtime_error
  /// when the exec launcher has no child binary.
  explicit Lifecycle(Setup setup);
  ~Lifecycle();

  Lifecycle(const Lifecycle&) = delete;
  Lifecycle& operator=(const Lifecycle&) = delete;

  const std::string& launcher_name() const { return launcher_name_; }
  const std::string& host_tag() const { return host_tag_; }
  /// The registry base every child coordinates through:
  /// "rdv:127.0.0.1:<port>" — a service endpoint, not a file.
  const std::string& registry() const { return registry_; }
  bool socket_channels() const { return socket_channels_; }
  /// True when children rebuild their world from the cohort spec file
  /// (exec launcher) — the supervisor must write_spec before spawning.
  bool wants_spec() const { return wants_spec_; }
  const std::string& spec_path() const { return spec_path_; }
  void write_spec(const CohortSpec& spec);
  void set_board(liveness::StatusBoard* board) { board_ = board; }

  /// Starts one rank process: spawn-fault check, stderr tagging pipe,
  /// channel endpoint (socket mode), then the launcher.  `entry` is the
  /// in-process child body for the fork launcher; exec children run the
  /// subsonic_child binary instead.  Throws launcher::SpawnError when no
  /// process came to exist.
  pid_t spawn(int rank, ChildConfig cfg, const std::vector<int>& close_in_child,
              std::function<void(const ChildConfig&)> entry);

  /// Round hygiene: retires every rendezvous registration of earlier
  /// rounds (the protocol form of deleting the old ports.g<N> file).
  void begin_generation(int generation);

  /// Socket-channel adoption for the liveness engine: blocks until rank's
  /// HB and CTL channels are dialed in, bounded by the heartbeat floor.
  std::pair<int, int> adopt_channels(int rank);

  /// Harvests a dead rank's flushed telemetry (and trace) before a
  /// respawn rewrites the files; merges into harvested().
  void harvest_rank(int rank, bool flushed);

  /// Restart budget exhausted: removes the run-control files and throws
  /// the per-rank ProcessRunError report.
  [[noreturn]] void fail(const std::vector<liveness::EngineFailure>& fails,
                         int restarts);

  /// A launch failed before any child existed: same cleanup, a one-rank
  /// report naming the host.
  [[noreturn]] void fail_spawn(const launcher::SpawnError& err, int restarts);

  void join_taggers();

  /// Telemetry harvested from ranks that died mid-run, by rank.  The
  /// blocked supervisor also folds its per-segment totals in here.
  std::map<int, telemetry::RankMetrics>& harvested() { return harvested_; }
  const std::vector<std::string>& harvested_traces() const {
    return harvested_traces_;
  }

  /// Start-of-run hygiene for supervisor-owned control files a crashed
  /// prior run may have left behind: legacy ports.g<N> registries,
  /// status.port, cohort.spec.
  static void clean_run_control_files(const std::string& workdir);

 private:
  Setup setup_;
  std::string launcher_name_;
  std::unique_ptr<launcher::Launcher> launcher_;
  std::unique_ptr<rendezvous::Server> server_;
  std::string registry_;
  std::string host_tag_;
  std::string spec_path_;
  bool socket_channels_ = false;
  bool wants_spec_ = false;
  liveness::StatusBoard* board_ = nullptr;
  std::vector<std::thread> taggers_;
  std::map<int, telemetry::RankMetrics> harvested_;
  std::vector<std::string> harvested_traces_;
};

}  // namespace cohort
}  // namespace subsonic
