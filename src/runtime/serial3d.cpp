#include "src/runtime/serial3d.hpp"

#include "src/solver/lbm3d.hpp"

namespace subsonic {

SerialDriver3D::SerialDriver3D(const Mask3D& mask, const FluidParams& params,
                               Method method, int threads)
    : schedule_(make_schedule3d(method)),
      domain_(mask, full_box(mask.extents()), params, method,
              required_ghost(method, params.filter_eps > 0.0), threads),
      telemetry_(std::make_unique<telemetry::Session>(
          telemetry::Session::from_env())) {
  full_sync();
}

void SerialDriver3D::fill_periodic(PaddedField3D<double>& u) {
  const FluidParams& p = domain_.params();
  const int g = domain_.ghost();
  const int nx = domain_.nx();
  const int ny = domain_.ny();
  const int nz = domain_.nz();
  // Wrap axis by axis; each later axis copies whole slabs including the
  // padding already filled by the earlier axes, which completes edges and
  // corners.
  if (p.periodic_x) {
    for (int z = 0; z < nz; ++z)
      for (int y = 0; y < ny; ++y)
        for (int k = 1; k <= g; ++k) {
          u(-k, y, z) = u(nx - k, y, z);
          u(nx - 1 + k, y, z) = u(k - 1, y, z);
        }
  }
  if (p.periodic_y) {
    for (int z = 0; z < nz; ++z)
      for (int k = 1; k <= g; ++k)
        for (int x = -g; x < nx + g; ++x) {
          u(x, -k, z) = u(x, ny - k, z);
          u(x, ny - 1 + k, z) = u(x, k - 1, z);
        }
  }
  if (p.periodic_z) {
    for (int k = 1; k <= g; ++k)
      for (int y = -g; y < ny + g; ++y)
        for (int x = -g; x < nx + g; ++x) {
          u(x, y, -k) = u(x, y, nz - k);
          u(x, y, nz - 1 + k) = u(x, y, k - 1);
        }
  }
}

void SerialDriver3D::full_sync() {
  fill_periodic(domain_.rho());
  fill_periodic(domain_.vx());
  fill_periodic(domain_.vy());
  fill_periodic(domain_.vz());
  for (int i = 0; i < domain_.q(); ++i) fill_periodic(domain_.f(i));
}

void SerialDriver3D::reinitialize() {
  if (domain_.method() == Method::kLatticeBoltzmann)
    lbm3d::set_equilibrium_both(domain_);
  full_sync();
}

void SerialDriver3D::run(int n) {
  telemetry::Session* const tel = telemetry_.get();
  for (int s = 0; s < n; ++s) {
    const long step = domain_.step();
    for (const Phase& phase : schedule_) {
      if (phase.kind == Phase::Kind::kCompute) {
        telemetry::ScopedSpan span(tel, 0, compute_phase_name(phase.compute),
                                   "compute", step);
        run_compute3d(domain_, phase.compute);
      } else {
        telemetry::ScopedSpan span(tel, 0, "comm.periodic_wrap", "comm",
                                   step);
        for (FieldId id : phase.fields) fill_periodic(domain_.field(id));
      }
    }
    domain_.set_step(step + 1);
    tel->metrics().counter(0, "steps").add();
  }
}

}  // namespace subsonic
