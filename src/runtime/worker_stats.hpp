// Per-worker timing, shared by the threaded drivers (which accumulate it
// live) and the process runtime (which reconstructs it from the metrics
// JSONL each rank writes).
#pragma once

namespace subsonic {

/// The measured version of the paper's processor utilization
/// g = T_calc / (T_calc + T_com) (section 8, eq. 8).  On a machine with
/// fewer cores than workers the "communication" time also absorbs
/// scheduler wait, so g is a lower bound there.
struct WorkerStats {
  double compute_s = 0;  ///< time inside compute phases
  double comm_s = 0;     ///< time inside exchange phases (incl. waiting)
  /// An idle worker (no time charged at all) reports 0, not 1: averaging
  /// ranks that never ran as "perfectly utilized" would inflate every
  /// summary they appear in.
  double utilization() const {
    const double total = compute_s + comm_s;
    return total > 0 ? compute_s / total : 0.0;
  }
};

}  // namespace subsonic
