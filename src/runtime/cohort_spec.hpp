// The serialized problem description an exec-launched child rebuilds its
// world from.  A forked child inherits the mask, params and decomposition
// by address; an ExecLauncher child (and eventually an SSH-launched one)
// inherits *nothing*, so the supervisor writes one cohort.spec file per
// run and every child derives the identical Mask / FluidParams /
// decomposition from it — the decomposition factories are deterministic
// functions of (mask, grid), so rebuilding them per child is bitwise
// equivalent to inheriting them.  This is supervisor -> child
// configuration, not rank-to-rank coordination, so a workdir file is the
// right vehicle (like the checkpoint dumps, unlike the retired port
// registry).
#pragma once

#include <string>
#include <vector>

#include "src/geometry/mask.hpp"
#include "src/runtime/domain_traits.hpp"
#include "src/solver/params.hpp"

namespace subsonic::cohort {

struct CohortSpec {
  int dim = 2;
  Method method = Method::kLatticeBoltzmann;
  bool blocked = false;
  int block_side = 0;  ///< over-decomposition side (blocked runs only)
  GridShape grid;
  FluidParams params;
  Mask2D mask2;  ///< the geometry when dim == 2
  Mask3D mask3;  ///< the geometry when dim == 3
  /// Block -> rank owner map of the current segment (blocked runs only);
  /// empty means the decomposition's default map.
  std::vector<int> owner;

  void set_mask(const Mask2D& m) {
    dim = 2;
    mask2 = m;
  }
  void set_mask(const Mask3D& m) {
    dim = 3;
    mask3 = m;
  }
};

std::vector<char> serialize_cohort_spec(const CohortSpec& spec);

/// Throws std::runtime_error on a truncated or corrupt buffer.
CohortSpec deserialize_cohort_spec(const char* data, std::size_t len);

/// Atomic write (tmp + rename), so a child can never observe a torn spec.
void write_cohort_spec(const std::string& path, const CohortSpec& spec);

/// Throws std::runtime_error when the file is missing or corrupt.
CohortSpec read_cohort_spec(const std::string& path);

}  // namespace subsonic::cohort
