// Compatibility header: ParallelDriver2D wraps the 2D instantiation of
// the dimension-generic ParallelDriver template (parallel_driver.hpp),
// keeping the historical (jx, jy) constructor signature.
#pragma once

#include <memory>

#include "src/runtime/parallel_driver.hpp"

namespace subsonic {

class ParallelDriver2D : public ParallelDriver<2> {
 public:
  ParallelDriver2D(const Mask2D& mask, const FluidParams& params,
                   Method method, int jx, int jy,
                   std::shared_ptr<Transport> transport = nullptr,
                   Scheduling sched = Scheduling::kOverlap, int threads = 0)
      : ParallelDriver<2>(mask, params, method, GridShape{jx, jy, 1},
                          std::move(transport), sched, threads) {}
};

}  // namespace subsonic
