#include "src/runtime/liveness.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/telemetry/telemetry.hpp"

namespace subsonic {
namespace liveness {

namespace {

constexpr std::uint32_t kBeaconMagic = 0x53554248u;    // "SUBH"
constexpr std::uint32_t kRollbackMagic = 0x53554252u;  // "SUBR"
constexpr std::uint32_t kMetricsMagic = 0x5355424Du;   // "SUBM"

template <typename T>
void put(unsigned char*& p, T v) {
  std::memcpy(p, &v, sizeof v);
  p += sizeof v;
}

template <typename T>
T get(const unsigned char*& p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  p += sizeof v;
  return v;
}

}  // namespace

int resolve_floor_ms(const LivenessOptions& options) {
  if (options.heartbeat_floor_ms > 0) return options.heartbeat_floor_ms;
  if (const char* env = std::getenv("SUBSONIC_HEARTBEAT_MS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 5000;
}

bool resolve_socket_channels(const LivenessOptions& options) {
  if (options.socket_channels > 0) return true;
  if (options.socket_channels < 0) return false;
  const char* env = std::getenv("SUBSONIC_LIVENESS_CHANNEL");
  return env && std::string(env) == "socket";
}

std::string registry_for(const std::string& base, int round) {
  return base + ".g" + std::to_string(round);
}

void remove_port_registries(const std::string& workdir) {
  DIR* dir = ::opendir(workdir.c_str());
  if (!dir) return;
  std::vector<std::string> doomed;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind("ports", 0) == 0) doomed.push_back(workdir + "/" + name);
  }
  ::closedir(dir);
  for (const std::string& path : doomed) std::remove(path.c_str());
}

void encode_beacon(const Beacon& b, unsigned char out[kBeaconBytes]) {
  unsigned char* p = out;
  put(p, kBeaconMagic);
  put(p, static_cast<std::int32_t>(b.rank));
  put(p, static_cast<std::int32_t>(b.phase));
  put(p, b.round);
  put(p, b.step);
  put(p, b.mono_ns);
}

bool decode_beacon(const unsigned char in[kBeaconBytes], Beacon* out) {
  const unsigned char* p = in;
  if (get<std::uint32_t>(p) != kBeaconMagic) return false;
  out->rank = get<std::int32_t>(p);
  const std::int32_t phase = get<std::int32_t>(p);
  if (phase < 0 || phase > static_cast<std::int32_t>(Phase::kWait))
    return false;
  out->phase = static_cast<Phase>(phase);
  out->round = get<std::int32_t>(p);
  out->step = get<std::int64_t>(p);
  out->mono_ns = get<std::int64_t>(p);
  return true;
}

void encode_metrics_frame(const MetricsFrame& m,
                          unsigned char out[kMetricsFrameBytes]) {
  unsigned char* p = out;
  put(p, kMetricsMagic);
  put(p, kMetricsFrameVersion);
  put(p, static_cast<std::uint16_t>(kMetricsFrameBytes));
  put(p, static_cast<std::int32_t>(m.rank));
  put(p, m.round);
  put(p, m.step);
  put(p, m.mono_ns);
  put(p, m.t_calc_s);
  put(p, m.t_com_s);
  put(p, m.steps_done);
  put(p, m.msgs_sent);
  put(p, m.doubles_sent);
  put(p, m.comm_p50_s);
  put(p, m.comm_p95_s);
  put(p, m.comm_p99_s);
  put(p, m.step_wall_sum_s);
  put(p, m.step_wall_count);
  for (std::uint32_t b : m.step_wall_buckets) put(p, b);
}

bool decode_metrics_frame(const unsigned char* in, std::size_t len,
                          MetricsFrame* out) {
  if (len < kMetricsFrameBytes) return false;
  const unsigned char* p = in;
  if (get<std::uint32_t>(p) != kMetricsMagic) return false;
  if (get<std::uint16_t>(p) != kMetricsFrameVersion) return false;
  if (get<std::uint16_t>(p) != kMetricsFrameBytes) return false;
  out->rank = get<std::int32_t>(p);
  out->round = get<std::int32_t>(p);
  out->step = get<std::int64_t>(p);
  out->mono_ns = get<std::int64_t>(p);
  out->t_calc_s = get<double>(p);
  out->t_com_s = get<double>(p);
  out->steps_done = get<std::int64_t>(p);
  out->msgs_sent = get<std::int64_t>(p);
  out->doubles_sent = get<std::int64_t>(p);
  out->comm_p50_s = get<double>(p);
  out->comm_p95_s = get<double>(p);
  out->comm_p99_s = get<double>(p);
  out->step_wall_sum_s = get<double>(p);
  out->step_wall_count = get<std::int64_t>(p);
  for (std::uint32_t& b : out->step_wall_buckets) b = get<std::uint32_t>(p);
  return true;
}

void encode_rollback(const RollbackMsg& m, unsigned char out[kRollbackBytes]) {
  unsigned char* p = out;
  put(p, kRollbackMagic);
  put(p, m.round);
  put(p, m.epoch);
}

bool decode_rollback(const unsigned char in[kRollbackBytes],
                     RollbackMsg* out) {
  const unsigned char* p = in;
  if (get<std::uint32_t>(p) != kRollbackMagic) return false;
  out->round = get<std::int32_t>(p);
  out->epoch = get<std::int64_t>(p);
  return true;
}

namespace {

/// Reads exactly `len` bytes; false on EOF/error — and on EAGAIN, so the
/// O_NONBLOCK drain below terminates when the pipe runs dry (rollback
/// writes are 16-byte atomic, so a partial frame cannot be stranded).
bool read_exact(int fd, unsigned char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, EAGAIN, or hard error
  }
  return true;
}

}  // namespace

int read_rollback(int fd, RollbackMsg* out) {
  unsigned char buf[kRollbackBytes];
  if (!read_exact(fd, buf, kRollbackBytes)) return 0;
  if (!decode_rollback(buf, out)) return 0;
  int consumed = 1;
  // Drain queued newer orders: if two recoveries raced this child's
  // rollback handling, only the newest round matters.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0) {
    RollbackMsg newer;
    while (read_exact(fd, buf, kRollbackBytes) &&
           decode_rollback(buf, &newer)) {
      *out = newer;
      ++consumed;
    }
    ::fcntl(fd, F_SETFL, flags);
  }
  return consumed;
}

long long mono_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Emitter::Emitter(int fd, int rank, int interval_ms)
    : fd_(fd),
      rank_(rank),
      interval_ns_(static_cast<long long>(
                       interval_ms > 0 ? interval_ms : 1) *
                   1000 * 1000) {}

void Emitter::emit(Phase phase, long step) {
  if (!active()) return;
  last_step_.store(step, std::memory_order_relaxed);
  write_beacon(phase, step);
  last_ns_.store(mono_now_ns(), std::memory_order_relaxed);
}

void Emitter::wait_tick() {
  if (!active()) return;
  const long long now = mono_now_ns();
  long long last = last_ns_.load(std::memory_order_relaxed);
  if (now - last < interval_ns_) return;
  // One winner per interval even with the sender thread racing the main
  // loop; losers simply skip — the beacon they wanted was just sent.
  if (!last_ns_.compare_exchange_strong(last, now, std::memory_order_relaxed))
    return;
  write_beacon(Phase::kWait, last_step_.load(std::memory_order_relaxed));
}

void Emitter::emit_metrics(MetricsFrame frame) {
  if (!active()) return;
  frame.rank = rank_;
  frame.round = round_.load(std::memory_order_relaxed);
  frame.mono_ns = mono_now_ns();
  unsigned char buf[kMetricsFrameBytes];
  encode_metrics_frame(frame, buf);
  // Same contract as beacons: 272 <= PIPE_BUF keeps the O_NONBLOCK write
  // all-or-nothing, so a full pipe drops the digest whole.
  const ssize_t n = ::write(fd_, buf, kMetricsFrameBytes);
  (void)n;
}

void Emitter::write_beacon(Phase phase, long step) {
  Beacon b;
  b.rank = rank_;
  b.phase = phase;
  b.round = round_.load(std::memory_order_relaxed);
  b.step = step;
  b.mono_ns = mono_now_ns();
  unsigned char frame[kBeaconBytes];
  encode_beacon(b, frame);
  // O_NONBLOCK write end: a full pipe (supervisor stalled) drops the
  // beacon rather than wedging the child.  32 <= PIPE_BUF, so the write
  // is all-or-nothing — no torn frames.
  const ssize_t n = ::write(fd_, frame, kBeaconBytes);
  (void)n;
}

void DeadlineModel::observe_step(double dt_s) {
  if (dt_s <= 0) return;
  ewma_step_s = ewma_step_s > 0 ? 0.7 * ewma_step_s + 0.3 * dt_s : dt_s;
}

double DeadlineModel::deadline_s() const {
  const double adaptive = multiplier * ewma_step_s;
  return adaptive > floor_s ? adaptive : floor_s;
}

Monitor::Monitor(double floor_s, double multiplier)
    : floor_s_(floor_s), multiplier_(multiplier) {}

void Monitor::attach(int rank, int fd, int round, double now_s) {
  State st;
  st.fd = fd;
  st.round = round;
  st.last_beacon_s = now_s;
  st.model.floor_s = floor_s_;
  st.model.multiplier = multiplier_;
  states_[rank] = std::move(st);
}

void Monitor::detach(int rank) { states_.erase(rank); }

bool Monitor::attached(int rank) const { return states_.count(rank) != 0; }

void Monitor::on_recovery_signal(int rank, int round, double now_s) {
  const auto it = states_.find(rank);
  if (it == states_.end()) return;
  State& st = it->second;
  if (round > st.round) st.round = round;
  st.last_beacon_s = now_s;
  st.hung = false;
  st.last_step_mono = -1;
}

void Monitor::poll(double now_s) {
  for (auto& [rank, st] : states_) {
    (void)rank;
    if (st.fd < 0) continue;
    char chunk[512];
    for (;;) {
      const ssize_t n = ::read(st.fd, chunk, sizeof chunk);
      if (n > 0) {
        st.buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      break;  // 0 = writer gone (reap will follow); <0 = EAGAIN/EINTR
    }
    // The pipe interleaves two frame types, both written atomically:
    // 32-byte beacons ("SUBH") and length-prefixed metrics digests
    // ("SUBM").  Dispatch on the magic; an unrecognized byte resyncs by
    // one (cannot happen with atomic pipe writes).
    while (st.buf.size() >= sizeof(std::uint32_t)) {
      std::uint32_t magic;
      std::memcpy(&magic, st.buf.data(), sizeof magic);
      if (magic == kMetricsMagic) {
        if (st.buf.size() < 8) break;  // size field not in yet
        std::uint16_t size;
        std::memcpy(&size, st.buf.data() + 6, sizeof size);
        if (size < 8) {
          st.buf.erase(0, 1);
          continue;
        }
        if (st.buf.size() < size) break;  // partial frame: carry to next poll
        MetricsFrame mf;
        if (decode_metrics_frame(
                reinterpret_cast<const unsigned char*>(st.buf.data()), size,
                &mf)) {
          st.has_frame = true;
          st.frame = mf;
          st.last_beacon_s = now_s;  // a digest is proof of life too
          if (frame_sink_) frame_sink_(mf);
        }
        st.buf.erase(0, size);
        continue;
      }
      if (magic != kBeaconMagic) {
        st.buf.erase(0, 1);
        continue;
      }
      if (st.buf.size() < kBeaconBytes) break;
      Beacon b;
      if (!decode_beacon(
              reinterpret_cast<const unsigned char*>(st.buf.data()), &b)) {
        st.buf.erase(0, 1);
        continue;
      }
      st.buf.erase(0, kBeaconBytes);
      st.last_beacon_s = now_s;
      if (b.round > st.round) st.round = b.round;
      if (b.phase == Phase::kStep) {
        if (st.last_step_mono >= 0 && b.mono_ns > st.last_step_mono)
          st.model.observe_step(
              static_cast<double>(b.mono_ns - st.last_step_mono) * 1e-9);
        st.last_step_mono = b.mono_ns;
        if (b.step > st.step) st.step = b.step;
      } else if (b.phase == Phase::kStart) {
        // New round: the step counter rewinds and cross-round step deltas
        // are meaningless for the EWMA.
        st.step = b.step;
        st.last_step_mono = -1;
      }
    }
  }
}

bool Monitor::latest_frame(int rank, MetricsFrame* out) const {
  const auto it = states_.find(rank);
  if (it == states_.end() || !it->second.has_frame) return false;
  *out = it->second.frame;
  return true;
}

void Monitor::set_frame_sink(std::function<void(const MetricsFrame&)> sink) {
  frame_sink_ = std::move(sink);
}

std::vector<int> Monitor::newly_hung(double now_s) {
  std::vector<int> hung;
  for (auto& [rank, st] : states_) {
    if (st.hung) continue;
    if (now_s - st.last_beacon_s > st.model.deadline_s()) {
      st.hung = true;
      hung.push_back(rank);
    }
  }
  return hung;
}

long Monitor::last_step(int rank) const {
  const auto it = states_.find(rank);
  return it == states_.end() ? -1 : it->second.step;
}

int Monitor::observed_round(int rank) const {
  const auto it = states_.find(rank);
  return it == states_.end() ? -1 : it->second.round;
}

double Monitor::silence_s(int rank, double now_s) const {
  const auto it = states_.find(rank);
  return it == states_.end() ? 0 : now_s - it->second.last_beacon_s;
}

double Monitor::deadline_s(int rank) const {
  const auto it = states_.find(rank);
  return it == states_.end() ? 0 : it->second.model.deadline_s();
}

bool Monitor::beaconed_since(int rank, double t_s) const {
  const auto it = states_.find(rank);
  return it == states_.end() || it->second.last_beacon_s >= t_s;
}

Escalation::Action Escalation::next(double now_s, double grace_s) {
  if (term_at_s < 0) {
    term_at_s = now_s;
    return Action::kSigterm;
  }
  if (!killed && now_s - term_at_s >= grace_s) {
    killed = true;
    return Action::kSigkill;
  }
  return Action::kNone;
}

CohortEngine::CohortEngine(std::vector<int> ranks,
                           const LivenessOptions& options, int max_restarts,
                           EngineHooks hooks, telemetry::Session* supervisor,
                           std::vector<telemetry::LivenessRecord>* records,
                           int* restarts, int* forks)
    : options_(options),
      floor_s_(resolve_floor_ms(options) * 1e-3),
      grace_s_((options.grace_ms > 0 ? options.grace_ms : 1) * 1e-3),
      max_restarts_(max_restarts),
      hooks_(std::move(hooks)),
      supervisor_(supervisor),
      records_(records),
      restarts_(restarts),
      forks_(forks),
      monitor_(floor_s_, options.deadline_multiplier),
      origin_(std::chrono::steady_clock::now()) {
  children_.reserve(ranks.size());
  for (int rank : ranks) {
    Child c;
    c.rank = rank;
    children_.push_back(c);
  }
  // Writing a rollback order to a child that just died must surface as
  // EPIPE, not kill the supervisor.
  old_sigpipe_ = ::signal(SIGPIPE, SIG_IGN);
  if (hooks_.on_metrics_frame) monitor_.set_frame_sink(hooks_.on_metrics_frame);
}

CohortEngine::~CohortEngine() { ::signal(SIGPIPE, old_sigpipe_); }

double CohortEngine::now_s() const {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void CohortEngine::record(const char* event, int rank, int generation,
                          long step, double silence_s, double deadline_s,
                          long epoch) {
  telemetry::LivenessRecord lr;
  lr.event = event;
  lr.rank = rank;
  lr.generation = generation;
  lr.step = step;
  lr.silence_s = silence_s;
  lr.deadline_s = deadline_s;
  lr.epoch = epoch;
  if (hooks_.host_of && rank >= 0) lr.host = hooks_.host_of(rank);
  if (hooks_.on_liveness) hooks_.on_liveness(lr);
  if (records_) records_->push_back(std::move(lr));
  if (supervisor_)
    supervisor_->metrics()
        .counter(-1, std::string("liveness.") + event)
        .add();
}

void CohortEngine::close_child_fds(Child& c) {
  if (c.hb_read >= 0) ::close(c.hb_read);
  if (c.ctl_write >= 0) ::close(c.ctl_write);
  c.hb_read = -1;
  c.ctl_write = -1;
}

void CohortEngine::spawn_one(Child& c, int generation, long restore_epoch) {
  const bool sockets = static_cast<bool>(hooks_.adopt_channels);
  int hb[2] = {-1, -1};
  int ctl[2] = {-1, -1};
  // Survivors outlive many spawns: every parent-side fd of every other
  // child must be closed in this one, or a dead rank's pipes would stay
  // half-open (no EOF, stray readers) for as long as any sibling lives.
  // (Socket channels are per-connection, but tidying them out of a forked
  // sibling is still correct — and free.)
  std::vector<int> close_in_child;
  for (const Child& other : children_) {
    if (other.hb_read >= 0) close_in_child.push_back(other.hb_read);
    if (other.ctl_write >= 0) close_in_child.push_back(other.ctl_write);
  }
  if (!sockets) {
    if (::pipe(hb) != 0) throw std::runtime_error("heartbeat pipe() failed");
    if (::pipe(ctl) != 0) {
      ::close(hb[0]);
      ::close(hb[1]);
      throw std::runtime_error("control pipe() failed");
    }
    // Child's write end never blocks (full pipe drops beacons); parent's
    // read end never blocks (the monitor drains opportunistically).
    ::fcntl(hb[1], F_SETFL, O_NONBLOCK);
    ::fcntl(hb[0], F_SETFL, O_NONBLOCK);
    close_in_child.push_back(hb[0]);
    close_in_child.push_back(ctl[1]);
  }

  pid_t pid = -1;
  try {
    pid = hooks_.spawn(c.rank, generation, restore_epoch, hb[1], ctl[0],
                       close_in_child);
  } catch (...) {
    // No child came to exist: both pipe ends are still ours to clean up.
    for (int fd : {hb[0], hb[1], ctl[0], ctl[1]})
      if (fd >= 0) ::close(fd);
    throw;
  }
  if (!sockets) {
    ::close(hb[1]);
    ::close(ctl[0]);
  }

  c.pid = pid;
  if (sockets) {
    // The child dials its channels back through the rendezvous service;
    // a timeout leaves -1 fds — the rank simply looks silent and the
    // watchdog escalates it like any other hang.
    const std::pair<int, int> chans = hooks_.adopt_channels(c.rank);
    c.hb_read = chans.first;
    c.ctl_write = chans.second;
    if (c.hb_read >= 0) ::fcntl(c.hb_read, F_SETFL, O_NONBLOCK);
  } else {
    c.hb_read = hb[0];
    c.ctl_write = ctl[1];
  }
  c.reaped = false;
  c.done = false;
  c.casualty = false;
  c.escalating = false;
  c.put_down = false;
  c.status = 0;
  c.spawn_round = generation;
  c.esc = Escalation{};
  monitor_.attach(c.rank, c.hb_read, generation, now_s());
  if (forks_) ++*forks_;
}

void CohortEngine::emergency_stop() {
  // A spawn failed mid-round: the cohort is unrecoverable (the missing
  // rank would starve every peer), so tear it down hard and let the
  // SpawnError propagate.  SIGKILL, not SIGTERM — there is nothing to
  // flush gracefully that is worth keeping orphans alive for.
  for (Child& c : children_) {
    if (c.reaped || c.pid <= 0) continue;
    ::kill(c.pid, SIGKILL);
  }
  for (Child& c : children_) {
    if (c.reaped || c.pid <= 0) continue;
    int status = 0;
    while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
    }
    c.reaped = true;
    c.status = status;
    monitor_.detach(c.rank);
    close_child_fds(c);
  }
}

void CohortEngine::fail_all(int generation) {
  // Budget exhausted.  Put every survivor down gracefully (their SIGTERM
  // handlers flush telemetry), reap everything, then hand the casualty
  // list to the caller's fail hook — which must throw.
  for (Child& c : children_) {
    if (c.reaped) continue;
    c.put_down = true;
    record("sigterm", c.rank, generation, monitor_.last_step(c.rank), 0, 0,
           -1);
    ::kill(c.pid, SIGTERM);
  }
  const double deadline = now_s() + grace_s_;
  auto reap_pass = [&](bool block) {
    for (Child& c : children_) {
      if (c.reaped) continue;
      int status = 0;
      const pid_t r = ::waitpid(c.pid, &status, block ? 0 : WNOHANG);
      if (r == c.pid) {
        c.reaped = true;
        c.status = status;
        monitor_.detach(c.rank);
        close_child_fds(c);
        if (!c.done && hooks_.on_rank_down)
          hooks_.on_rank_down(c.rank, WIFEXITED(status));
      }
    }
  };
  while (now_s() < deadline) {
    reap_pass(false);
    bool live = false;
    for (const Child& c : children_)
      if (!c.reaped) live = true;
    if (!live) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (Child& c : children_) {
    if (c.reaped) continue;
    record("sigkill", c.rank, generation, monitor_.last_step(c.rank), 0, 0,
           -1);
    ::kill(c.pid, SIGKILL);
  }
  reap_pass(true);
  if (hooks_.poll_epochs) hooks_.poll_epochs();

  std::vector<EngineFailure> failures;
  for (const Child& c : children_) {
    if (!c.casualty) continue;
    EngineFailure f;
    f.rank = c.rank;
    f.status = c.status;
    f.hung = c.escalating;
    failures.push_back(f);
  }
  if (hooks_.fail) hooks_.fail(failures);
  throw std::runtime_error("cohort failed and no fail hook was installed");
}

void CohortEngine::run(int* generation, long initial_restore_epoch) {
  int g = *generation;
  long epoch = initial_restore_epoch;
  if (hooks_.begin_generation) hooks_.begin_generation(g, epoch);
  try {
    for (Child& c : children_) spawn_one(c, g, epoch);
  } catch (...) {
    emergency_stop();
    throw;
  }
  bool recovering = false;
  // Proof-of-life anchor: the time of the newest down/hang event.  A
  // recovery commits only once every surviving rank has beaconed at or
  // after this point, so a rank that went silent just before a sibling's
  // detection joins the same recovery round instead of wasting a second
  // one (and a second slice of the restart budget) moments later.  A
  // genuinely silent rank cannot hold the commit hostage: its own
  // deadline crosses, it is escalated, and it stops being a survivor.
  double quiesce_after = -1;

  for (;;) {
    const double now = now_s();
    monitor_.poll(now);
    bool progressed = false;

    // Reap and classify.
    for (Child& c : children_) {
      if (c.reaped) continue;
      int status = 0;
      const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
      if (r != c.pid) continue;
      progressed = true;
      monitor_.poll(now);  // drain the child's final beacons before judging
      const int obs_round = monitor_.observed_round(c.rank);
      const long obs_step = monitor_.last_step(c.rank);
      c.reaped = true;
      c.status = status;
      monitor_.detach(c.rank);
      close_child_fds(c);

      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (clean && obs_round == g && !recovering) {
        c.done = true;
        continue;
      }
      // Every other exit needs a recovery round to respawn this rank:
      //  - a clean exit on a stale round (the rank missed a rollback and
      //    finished old work — harmless, but the new round needs it back),
      //  - a clean exit while a recovery is already pending (its round is
      //    about to be rolled back from under it),
      //  - a put-down ack (kTermAckExit or our escalation SIGKILL),
      //  - and a genuine casualty (fault, crash, peer-lost).
      recovering = true;
      quiesce_after = now;
      if (!clean && !c.put_down) {
        c.casualty = true;
        record("exit_detected", c.rank, g, obs_step, 0, 0, -1);
      }
      // A child that ran its exit path (any exit code) flushed its
      // telemetry on the way out; one torn down by a signal left only
      // its periodic flushes behind — the harvest must be tagged partial.
      if (hooks_.on_rank_down) hooks_.on_rank_down(c.rank, WIFEXITED(status));
    }

    if (hooks_.poll_epochs) hooks_.poll_epochs();

    // Watchdog: silence past the adaptive deadline.
    if (options_.watchdog) {
      for (int rank : monitor_.newly_hung(now)) {
        for (Child& c : children_) {
          if (c.rank != rank || c.reaped || c.escalating) continue;
          c.casualty = true;
          c.escalating = true;
          recovering = true;
          quiesce_after = now;
          record("hang_detected", rank, g, monitor_.last_step(rank),
                 monitor_.silence_s(rank, now), monitor_.deadline_s(rank),
                 -1);
          progressed = true;
        }
      }
    }

    // Escalation ladder for flagged ranks.
    for (Child& c : children_) {
      if (!c.escalating || c.reaped) continue;
      switch (c.esc.next(now, grace_s_)) {
        case Escalation::Action::kSigterm:
          c.put_down = true;
          record("sigterm", c.rank, g, monitor_.last_step(c.rank), 0, 0, -1);
          ::kill(c.pid, SIGTERM);
          progressed = true;
          break;
        case Escalation::Action::kSigkill:
          record("sigkill", c.rank, g, monitor_.last_step(c.rank), 0, 0, -1);
          ::kill(c.pid, SIGKILL);
          progressed = true;
          break;
        case Escalation::Action::kNone:
          break;
      }
    }

    // Commit a recovery round once every rank that needs respawning is
    // dead and reaped (escalations still in flight hold it open) and
    // every survivor has proved it is alive since the last casualty.
    bool respawn_needed = false;
    bool escalation_pending = false;
    bool survivors_fresh = true;
    for (const Child& c : children_) {
      if (c.reaped && !c.done) respawn_needed = true;
      if (c.escalating && !c.reaped) escalation_pending = true;
      if (!c.reaped && !c.escalating &&
          !monitor_.beaconed_since(c.rank, quiesce_after))
        survivors_fresh = false;
    }
    if (recovering && respawn_needed && !escalation_pending &&
        survivors_fresh) {
      bool charged = false;
      for (const Child& c : children_)
        if (c.casualty) charged = true;
      if (charged) {
        // Only genuine casualties consume restart budget; a benign
        // re-sync (stale-round finisher) does not.
        if (restarts_ && *restarts_ >= max_restarts_) fail_all(g);
        if (restarts_) ++*restarts_;
        if (supervisor_)
          supervisor_->metrics().counter(-1, "restart.count").add();
      }
      if (hooks_.poll_epochs) hooks_.poll_epochs();
      ++g;
      epoch = hooks_.committed_epoch ? hooks_.committed_epoch() : -1;
      if (hooks_.begin_generation) hooks_.begin_generation(g, epoch);
      // Roll survivors back first so they re-register in the new round's
      // port registry before the respawned ranks start looking it up.
      for (Child& c : children_) {
        if (c.reaped) continue;
        RollbackMsg msg;
        msg.round = g;
        msg.epoch = epoch;
        unsigned char frame[kRollbackBytes];
        encode_rollback(msg, frame);
        const ssize_t n = ::write(c.ctl_write, frame, kRollbackBytes);
        // EPIPE: the child died between reap passes; the next WNOHANG
        // pass will classify it and trigger another recovery round.
        (void)n;
        ::kill(c.pid, SIGUSR1);
        monitor_.on_recovery_signal(c.rank, g, now_s());
        record("rollback", c.rank, g, monitor_.last_step(c.rank), 0, 0,
               epoch);
      }
      try {
        for (Child& c : children_) {
          if (!c.reaped) continue;
          record("restart", c.rank, g, -1, 0, 0, epoch);
          spawn_one(c, g, epoch);
        }
      } catch (...) {
        emergency_stop();
        throw;
      }
      recovering = false;
      progressed = true;
    }

    bool all_done = true;
    for (const Child& c : children_)
      if (!c.reaped || !c.done) all_done = false;
    if (all_done) break;

    if (!progressed)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  *generation = g + 1;
}

}  // namespace liveness
}  // namespace subsonic
